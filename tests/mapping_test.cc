// Unit tests for intervals, mapping functions, contribution separability and
// the canonical mapper.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mapping/canonical.h"
#include "mapping/map_expr.h"
#include "prefs/dominance.h"

namespace progxe {
namespace {

TEST(Interval, BasicsAndArithmetic) {
  Interval a(1.0, 3.0);
  EXPECT_EQ(a.width(), 2.0);
  EXPECT_TRUE(a.Contains(1.0));
  EXPECT_TRUE(a.Contains(3.0));
  EXPECT_FALSE(a.Contains(3.1));

  Interval b(2.0, 5.0);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(Interval(4.0, 6.0)));
  EXPECT_TRUE(Interval(3.0, 4.0).Intersects(a));  // touching endpoints

  Interval hull = a.Hull(Interval(10.0, 12.0));
  EXPECT_EQ(hull, Interval(1.0, 12.0));

  EXPECT_EQ(a + b, Interval(3.0, 8.0));
  EXPECT_EQ(a * 2.0, Interval(2.0, 6.0));
  EXPECT_EQ(a * -1.0, Interval(-3.0, -1.0));  // negative weight flips
  EXPECT_EQ(a + 10.0, Interval(11.0, 13.0));
  EXPECT_EQ(Interval::Point(5.0).width(), 0.0);
}

TEST(Transform, MonotoneAndInterval) {
  for (Transform t : {Transform::kIdentity, Transform::kLog1p,
                      Transform::kSqrt, Transform::kSaturating}) {
    double prev = ApplyTransform(t, 0.0);
    for (double v = 0.25; v <= 10.0; v += 0.25) {
      double cur = ApplyTransform(t, v);
      EXPECT_GT(cur, prev) << "transform not strictly increasing";
      prev = cur;
    }
    Interval img = ApplyTransform(t, Interval(1.0, 4.0));
    EXPECT_EQ(img.lo, ApplyTransform(t, 1.0));
    EXPECT_EQ(img.hi, ApplyTransform(t, 4.0));
  }
}

TEST(MapFunc, EvalQ1Style) {
  // Q1: tCost = R.uPrice + T.uShipCost; delay = 2*R.manTime + T.shipTime.
  MapFunc tcost = MapFunc::Sum(0, 0, "tCost");
  MapFunc delay = MapFunc::WeightedSum(2.0, 1, 1.0, 1, 0.0, "delay");
  const double r[] = {10.0, 3.0};
  const double t[] = {4.0, 7.0};
  EXPECT_EQ(tcost.Eval(r, t), 14.0);
  EXPECT_EQ(delay.Eval(r, t), 13.0);
}

TEST(MapFunc, PassthroughAndConstant) {
  MapFunc f = MapFunc::Passthrough(Side::kT, 1);
  const double r[] = {1.0};
  const double t[] = {5.0, 9.0};
  EXPECT_EQ(f.Eval(r, t), 9.0);

  MapFunc with_const({{Side::kR, 0, 1.0}}, 100.0);
  EXPECT_EQ(with_const.Eval(r, t), 101.0);
}

TEST(MapFunc, ValidateChecksIndices) {
  MapFunc bad({{Side::kR, 5, 1.0}});
  EXPECT_FALSE(bad.Validate(2, 2).ok());
  EXPECT_TRUE(bad.Validate(6, 2).ok());
  MapFunc bad_t({{Side::kT, 3, 1.0}});
  EXPECT_FALSE(bad_t.Validate(6, 2).ok());
}

TEST(MapFunc, ToStringReadable) {
  MapFunc f = MapFunc::WeightedSum(2.0, 1, 1.0, 0, 0.0, "delay");
  EXPECT_EQ(f.ToString(), "delay = 2*R.a1 + T.a0");
}

// Separability: Eval == Combine(Contribution_R, Contribution_T) for random
// functions and inputs — the property the whole engine rests on.
TEST(MapFuncProperty, ContributionSeparability) {
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<MapTerm> terms;
    const int nterms = 1 + static_cast<int>(rng.NextBelow(4));
    for (int i = 0; i < nterms; ++i) {
      terms.push_back(MapTerm{rng.Bernoulli(0.5) ? Side::kR : Side::kT,
                              static_cast<int>(rng.NextBelow(3)),
                              rng.Uniform(0.1, 3.0)});
    }
    const Transform transform = static_cast<Transform>(rng.NextBelow(4));
    MapFunc f(terms, rng.Uniform(0.0, 5.0), transform);

    double r[3];
    double t[3];
    for (int i = 0; i < 3; ++i) {
      r[i] = rng.Uniform(0.0, 10.0);
      t[i] = rng.Uniform(0.0, 10.0);
    }
    const double direct = f.Eval(r, t);
    const double split =
        f.Combine(f.Contribution(Side::kR, r), f.Contribution(Side::kT, t));
    EXPECT_NEAR(direct, split, 1e-12);
  }
}

// Bound soundness: for random attribute boxes, the contribution of any point
// inside the box lies inside the propagated interval.
TEST(MapFuncProperty, ContributionBoundsContainPointImages) {
  Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<MapTerm> terms;
    for (int i = 0; i < 3; ++i) {
      terms.push_back(MapTerm{Side::kR, i, rng.Uniform(-2.0, 3.0)});
    }
    MapFunc f(terms, rng.Uniform(-1.0, 1.0));

    std::vector<Interval> box;
    for (int i = 0; i < 3; ++i) {
      double lo = rng.Uniform(0.0, 5.0);
      box.push_back(Interval(lo, lo + rng.Uniform(0.0, 5.0)));
    }
    Interval bounds = f.ContributionBounds(Side::kR, box);
    for (int sample = 0; sample < 20; ++sample) {
      double pt[3];
      for (int i = 0; i < 3; ++i) {
        pt[i] = rng.Uniform(box[static_cast<size_t>(i)].lo,
                            box[static_cast<size_t>(i)].hi);
      }
      const double v = f.Contribution(Side::kR, pt);
      EXPECT_GE(v, bounds.lo - 1e-9);
      EXPECT_LE(v, bounds.hi + 1e-9);
    }
  }
}

TEST(MapSpec, PairwiseSumShape) {
  MapSpec spec = MapSpec::PairwiseSum(3);
  EXPECT_EQ(spec.output_dimensions(), 3);
  const double r[] = {1.0, 2.0, 3.0};
  const double t[] = {10.0, 20.0, 30.0};
  double out[3];
  spec.Eval(r, t, out);
  EXPECT_EQ(out[0], 11.0);
  EXPECT_EQ(out[1], 22.0);
  EXPECT_EQ(out[2], 33.0);
}

TEST(MapSpec, ValidateRejectsEmptyAndBadIndices) {
  EXPECT_FALSE(MapSpec().Validate(2, 2).ok());
  EXPECT_FALSE(
      MapSpec({MapFunc::Sum(0, 9)}).Validate(2, 2).ok());
  EXPECT_TRUE(MapSpec::PairwiseSum(2).Validate(2, 2).ok());
}

TEST(CanonicalMapper, FoldsHighestDimensions) {
  MapSpec spec = MapSpec::PairwiseSum(2);
  Preference pref({Direction::kLowest, Direction::kHighest});
  CanonicalMapper mapper(spec, pref);

  const double r[] = {1.0, 2.0};
  const double t[] = {3.0, 4.0};
  double cr[2];
  double ct[2];
  mapper.ContributionVector(Side::kR, r, cr);
  mapper.ContributionVector(Side::kT, t, ct);
  double out[2];
  mapper.Combine(cr, ct, out);
  EXPECT_EQ(out[0], 4.0);    // minimized: raw value
  EXPECT_EQ(out[1], -6.0);   // maximized: negated
  EXPECT_EQ(mapper.Decanonicalize(1, out[1]), 6.0);
}

// Canonical dominance must agree with preference-directed dominance on the
// raw outputs for random mixed-direction specs.
TEST(CanonicalMapperProperty, CanonicalOrderMatchesPreferenceOrder) {
  Rng rng(77);
  MapSpec spec = MapSpec::PairwiseSum(3);
  Preference pref({Direction::kLowest, Direction::kHighest,
                   Direction::kLowest});
  CanonicalMapper mapper(spec, pref);
  for (int trial = 0; trial < 300; ++trial) {
    double r1[3], t1[3], r2[3], t2[3];
    for (int i = 0; i < 3; ++i) {
      r1[i] = static_cast<double>(rng.NextBelow(4));
      t1[i] = static_cast<double>(rng.NextBelow(4));
      r2[i] = static_cast<double>(rng.NextBelow(4));
      t2[i] = static_cast<double>(rng.NextBelow(4));
    }
    double raw1[3], raw2[3];
    spec.Eval(r1, t1, raw1);
    spec.Eval(r2, t2, raw2);

    double c1r[3], c1t[3], c2r[3], c2t[3], can1[3], can2[3];
    mapper.ContributionVector(Side::kR, r1, c1r);
    mapper.ContributionVector(Side::kT, t1, c1t);
    mapper.ContributionVector(Side::kR, r2, c2r);
    mapper.ContributionVector(Side::kT, t2, c2t);
    mapper.Combine(c1r, c1t, can1);
    mapper.Combine(c2r, c2t, can2);

    std::span<const double> s1(raw1, 3);
    std::span<const double> s2(raw2, 3);
    EXPECT_EQ(DominatesMin(can1, can2, 3), Dominates(s1, s2, pref));
  }
}

// CombineBatch must reproduce per-pair Combine bit for bit under every
// transform and direction mix.
TEST(CanonicalMapperProperty, CombineBatchMatchesCombine) {
  Rng rng(77);
  for (int trial = 0; trial < 50; ++trial) {
    const int k = 2 + static_cast<int>(rng.NextBelow(2));
    std::vector<MapFunc> funcs;
    std::vector<Direction> dirs;
    for (int j = 0; j < k; ++j) {
      funcs.push_back(MapFunc({{Side::kR, j % 2, rng.Uniform(0.1, 2.0)},
                               {Side::kT, j % 2, rng.Uniform(0.1, 2.0)}},
                              rng.Uniform(0.0, 3.0),
                              static_cast<Transform>(rng.NextBelow(4))));
      dirs.push_back(rng.Bernoulli(0.5) ? Direction::kLowest
                                        : Direction::kHighest);
    }
    CanonicalMapper mapper{MapSpec(funcs), Preference(dirs)};

    const size_t kk = static_cast<size_t>(k);
    const size_t n_r = 5, n_t = 4, n_pairs = 9;
    std::vector<double> r_flat(n_r * kk), t_flat(n_t * kk);
    for (double& v : r_flat) v = rng.Uniform(-4.0, 4.0);
    for (double& v : t_flat) v = rng.Uniform(-4.0, 4.0);
    std::vector<RowIdPair> pairs;
    for (size_t i = 0; i < n_pairs; ++i) {
      pairs.push_back(RowIdPair{static_cast<RowId>(rng.NextBelow(n_r)),
                                static_cast<RowId>(rng.NextBelow(n_t))});
    }

    std::vector<double> batch_out(n_pairs * kk);
    mapper.CombineBatch(pairs.data(), n_pairs, r_flat.data(), t_flat.data(),
                        batch_out.data());
    std::vector<double> single(kk);
    for (size_t i = 0; i < n_pairs; ++i) {
      mapper.Combine(r_flat.data() + pairs[i].r * kk,
                     t_flat.data() + pairs[i].t * kk, single.data());
      for (size_t j = 0; j < kk; ++j) {
        EXPECT_EQ(single[j], batch_out[i * kk + j])
            << "trial=" << trial << " pair=" << i << " dim=" << j;
      }
    }
  }
}

// CombineBounds soundness under every transform and direction mix.
TEST(CanonicalMapperProperty, CombineBoundsContainCombinedPoints) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<MapFunc> funcs;
    std::vector<Direction> dirs;
    for (int j = 0; j < 2; ++j) {
      const Transform transform = static_cast<Transform>(rng.NextBelow(4));
      funcs.push_back(MapFunc({{Side::kR, j, rng.Uniform(0.1, 2.0)},
                               {Side::kT, j, rng.Uniform(0.1, 2.0)}},
                              0.0, transform));
      dirs.push_back(rng.Bernoulli(0.5) ? Direction::kLowest
                                        : Direction::kHighest);
    }
    CanonicalMapper mapper{MapSpec(funcs), Preference(dirs)};

    std::vector<Interval> r_box;
    std::vector<Interval> t_box;
    for (int i = 0; i < 2; ++i) {
      double lo = rng.Uniform(0.0, 5.0);
      r_box.push_back(Interval(lo, lo + rng.Uniform(0.1, 5.0)));
      lo = rng.Uniform(0.0, 5.0);
      t_box.push_back(Interval(lo, lo + rng.Uniform(0.1, 5.0)));
    }
    Interval r_contrib[2], t_contrib[2], out_bounds[2];
    mapper.ContributionBounds(Side::kR, r_box, r_contrib);
    mapper.ContributionBounds(Side::kT, t_box, t_contrib);
    mapper.CombineBounds(r_contrib, t_contrib, out_bounds);

    for (int sample = 0; sample < 20; ++sample) {
      double r_pt[2], t_pt[2];
      for (int i = 0; i < 2; ++i) {
        r_pt[i] = rng.Uniform(r_box[static_cast<size_t>(i)].lo,
                              r_box[static_cast<size_t>(i)].hi);
        t_pt[i] = rng.Uniform(t_box[static_cast<size_t>(i)].lo,
                              t_box[static_cast<size_t>(i)].hi);
      }
      double cr[2], ct[2], out[2];
      mapper.ContributionVector(Side::kR, r_pt, cr);
      mapper.ContributionVector(Side::kT, t_pt, ct);
      mapper.Combine(cr, ct, out);
      for (int j = 0; j < 2; ++j) {
        EXPECT_GE(out[j], out_bounds[j].lo - 1e-9);
        EXPECT_LE(out[j], out_bounds[j].hi + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace progxe
