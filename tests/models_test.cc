// Tests for the cardinality estimate (Equation 1) and the cost model
// (Equations 3-7) used by ProgOrder.
#include <gtest/gtest.h>

#include <cmath>

#include "progxe/cardinality.h"
#include "progxe/cost_model.h"

namespace progxe {
namespace {

TEST(Cardinality, FactorialD) {
  EXPECT_EQ(FactorialD(0), 1.0);
  EXPECT_EQ(FactorialD(1), 1.0);
  EXPECT_EQ(FactorialD(3), 6.0);
  EXPECT_EQ(FactorialD(5), 120.0);
}

TEST(Cardinality, ExpectedSkylineSizeFormula) {
  // d = 1: a single minimum.
  EXPECT_EQ(ExpectedSkylineSize(1000.0, 1), 1.0);
  // d = 2: ln(n).
  EXPECT_NEAR(ExpectedSkylineSize(std::exp(5.0), 2), 5.0, 1e-9);
  // d = 4: ln(n)^3 / 3!.
  const double n = std::exp(6.0);
  EXPECT_NEAR(ExpectedSkylineSize(n, 4), 6.0 * 6.0 * 6.0 / 6.0, 1e-9);
  // Floors at 1 and handles degenerate inputs.
  EXPECT_EQ(ExpectedSkylineSize(1.0, 3), 1.0);
  EXPECT_EQ(ExpectedSkylineSize(0.0, 3), 0.0);
}

TEST(Cardinality, MonotoneInNAndD) {
  EXPECT_LT(ExpectedSkylineSize(100, 3), ExpectedSkylineSize(10000, 3));
  EXPECT_LT(ExpectedSkylineSize(10000, 3), ExpectedSkylineSize(10000, 5));
}

TEST(Cardinality, RegionEstimateUsesJoinCardinality) {
  // sigma * n_a * n_b = 0 -> 0; equal products -> equal estimates.
  EXPECT_EQ(RegionCardinalityEstimate(0.0, 100, 100, 4), 0.0);
  EXPECT_EQ(RegionCardinalityEstimate(0.01, 100, 100, 4),
            RegionCardinalityEstimate(1.0, 10, 10, 4));
}

TEST(CostModel, KungAlpha) {
  EXPECT_EQ(KungAlpha(2), 1.0);
  EXPECT_EQ(KungAlpha(3), 1.0);
  EXPECT_EQ(KungAlpha(4), 2.0);
  EXPECT_EQ(KungAlpha(6), 4.0);
}

TEST(CostModel, ComparablePartitions) {
  CostModelParams params;
  params.cells_per_dim = 10;
  params.dims = 4;
  EXPECT_EQ(ComparablePartitionsAvg(params), 40.0);
}

TEST(CostModel, CostGrowsWithPartitionSizes) {
  CostModelParams params;
  params.sigma = 0.01;
  const double small = RegionCost(params, 100, 100, 50);
  const double large = RegionCost(params, 1000, 1000, 50);
  EXPECT_LT(small, large);
}

TEST(CostModel, CostGrowsWithSigma) {
  CostModelParams params;
  params.sigma = 0.001;
  const double low = RegionCost(params, 500, 500, 50);
  params.sigma = 0.1;
  const double high = RegionCost(params, 500, 500, 50);
  EXPECT_LT(low, high);
}

TEST(CostModel, AlwaysPositive) {
  CostModelParams params;
  params.sigma = 0.0;
  EXPECT_GE(RegionCost(params, 0, 0, 0), 1.0);
}

TEST(CostModel, JoinTermDominatesAtTinySigma) {
  // With sigma ~ 0, cost ~ n_a * n_b (Equation 4 dominates).
  CostModelParams params;
  params.sigma = 1e-9;
  EXPECT_NEAR(RegionCost(params, 300, 400, 100), 300.0 * 400.0, 1.0);
}

}  // namespace
}  // namespace progxe
