// Distributed shard transport tests: the wire protocol's serde must be a
// lossless involution (and reject truncated/corrupted payloads with a clean
// Status, never a crash), and a ShardedStream served by real loopback
// worker processes must deliver a result set *bit-identical* to the
// in-process run — through clean runs, worker death mid-stream (retry on a
// surviving worker) and retry exhaustion (exact kPartial coverage).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "equivalence_common.h"
#include "net/net_stats.h"
#include "net/remote_shard.h"
#include "net/socket.h"
#include "net/wire.h"
#include "progxe/checkpoint.h"
#include "net/worker_pool.h"
#include "net/worker_service.h"
#include "progxe/session.h"
#include "progxe/stream.h"
#include "shard/shard_planner.h"
#include "shard/sharded_stream.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

using IdSet = std::vector<std::pair<RowId, RowId>>;

IdSet SortedIds(const std::vector<ResultTuple>& results) {
  IdSet ids;
  ids.reserve(results.size());
  for (const ResultTuple& res : results) ids.emplace_back(res.r_id, res.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<ResultTuple> DrainStream(ProgXeStream* stream, size_t max_results,
                                     size_t max_pairs) {
  std::vector<ResultTuple> all;
  std::vector<ResultTuple> batch;
  while (!stream->Finished()) {
    const size_t n = stream->NextBatch(max_results, max_pairs, &batch);
    if (n == 0) {
      if (max_pairs == 0) break;
      continue;
    }
    for (ResultTuple& res : batch) all.push_back(std::move(res));
  }
  return all;
}

// --- Wire serde -------------------------------------------------------------

TEST(Wire, PrimitiveRoundTripIsBitLossless) {
  std::string buf;
  WireWriter w(&buf);
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeefu);
  w.PutU64(0x0123456789abcdefull);
  w.PutI64(-42);
  // The doubles that break naive text round-trips: NaN (payload bits),
  // infinities, signed zero, denormal, and a full-precision value.
  const std::vector<double> specials = {
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      -0.0,
      std::numeric_limits<double>::denorm_min(),
      0.1 + 0.2};
  for (double d : specials) w.PutDouble(d);
  w.PutString("hello \0 wire");  // embedded NUL truncates the literal: fine
  w.PutDoubles(specials);

  WireReader r(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  EXPECT_TRUE(r.GetU8(&u8));
  EXPECT_EQ(u8, 0xab);
  EXPECT_TRUE(r.GetU16(&u16));
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_TRUE(r.GetU32(&u32));
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_TRUE(r.GetU64(&u64));
  EXPECT_EQ(u64, 0x0123456789abcdefull);
  EXPECT_TRUE(r.GetI64(&i64));
  EXPECT_EQ(i64, -42);
  for (double expected : specials) {
    double d;
    EXPECT_TRUE(r.GetDouble(&d));
    // Bit equality, not value equality: NaN != NaN but its bits round-trip.
    EXPECT_EQ(std::memcmp(&d, &expected, sizeof d), 0);
  }
  std::string s;
  EXPECT_TRUE(r.GetString(&s));
  EXPECT_EQ(s, "hello ");
  std::vector<double> ds;
  EXPECT_TRUE(r.GetDoubles(&ds));
  ASSERT_EQ(ds.size(), specials.size());
  EXPECT_EQ(std::memcmp(ds.data(), specials.data(),
                        ds.size() * sizeof(double)),
            0);
  EXPECT_TRUE(r.AtEnd());
  EXPECT_TRUE(r.ok());
}

/// One encoded payload per field group of the session protocol, built from
/// a randomized query so coverage does not depend on hand-picked shapes.
std::vector<std::string> EncodeFieldGroups(const Config& cfg) {
  std::vector<std::string> payloads;
  {
    std::string buf;
    WireWriter w(&buf);
    WriteRelation(cfg.r, &w);
    payloads.push_back(std::move(buf));
  }
  {
    std::string buf;
    WireWriter w(&buf);
    WriteMapSpec(cfg.map, &w);
    payloads.push_back(std::move(buf));
  }
  {
    std::string buf;
    WireWriter w(&buf);
    WritePreference(cfg.pref, &w);
    payloads.push_back(std::move(buf));
  }
  {
    ProgXeOptions options;
    options.seed = 0xfeed;
    auto seed = std::make_shared<RefinementSeed>();
    seed->k = 2;
    seed->canonical = {0.25, -1.5};
    options.refinement_seed = std::move(seed);
    std::string buf;
    WireWriter w(&buf);
    WriteOptions(options, &w);
    payloads.push_back(std::move(buf));
  }
  {
    ProgXeStats stats;
    stats.join_pairs_generated = 12345;
    stats.results_emitted = 678;
    stats.dominance_comparisons = 91011;
    std::string buf;
    WireWriter w(&buf);
    WriteStats(stats, &w);
    payloads.push_back(std::move(buf));
  }
  {
    std::vector<ResultTuple> batch(3);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].r_id = static_cast<RowId>(i);
      batch[i].t_id = static_cast<RowId>(i + 10);
      batch[i].values = {1.5 * static_cast<double>(i), -0.0};
    }
    std::string buf;
    WireWriter w(&buf);
    WriteResultBatch(batch, 2, &w);
    payloads.push_back(std::move(buf));
  }
  {
    std::string buf;
    WireWriter w(&buf);
    WriteWatermark(true, {0.0, std::numeric_limits<double>::infinity()}, &w);
    payloads.push_back(std::move(buf));
  }
  {
    std::string buf;
    WireWriter w(&buf);
    WriteStatusPayload(Status::Unavailable("worker died"), &w);
    payloads.push_back(std::move(buf));
  }
  {
    SessionCheckpoint checkpoint;
    checkpoint.k = 2;
    checkpoint.frontier_epoch = 17;
    checkpoint.delivered = 23;
    checkpoint.region_count = 64;
    checkpoint.replay_pairs_saved = 4096;
    checkpoint.skip_regions = {0, 3, 9, 41};
    checkpoint.stats.join_pairs_generated = 4242;
    checkpoint.stats.results_emitted = 23;
    std::string buf;
    WireWriter w(&buf);
    WriteCheckpoint(checkpoint, &w);
    payloads.push_back(std::move(buf));
  }
  return payloads;
}

/// Decodes payload i of EncodeFieldGroups' order; returns the decode
/// Status. Used both for the round-trip direction and the fuzz direction.
Status DecodeFieldGroup(size_t index, const std::string& payload) {
  WireReader r(payload);
  Status st;
  switch (index) {
    case 0: {
      Relation rel{Schema::Anonymous(0)};
      st = ReadRelation(&r, &rel);
      break;
    }
    case 1: {
      MapSpec spec;
      st = ReadMapSpec(&r, &spec);
      break;
    }
    case 2: {
      Preference pref;
      st = ReadPreference(&r, &pref);
      break;
    }
    case 3: {
      ProgXeOptions options;
      st = ReadOptions(&r, &options);
      break;
    }
    case 4: {
      ProgXeStats stats;
      st = ReadStats(&r, &stats);
      break;
    }
    case 5: {
      std::vector<ResultTuple> batch;
      st = ReadResultBatch(&r, &batch);
      break;
    }
    case 6: {
      bool has_bound;
      std::vector<double> bound;
      st = ReadWatermark(&r, &has_bound, &bound);
      break;
    }
    case 7: {
      Status decoded;
      st = ReadStatusPayload(&r, &decoded);
      break;
    }
    default: {
      SessionCheckpoint checkpoint;
      st = ReadCheckpoint(&r, &checkpoint);
      break;
    }
  }
  if (st.ok() && !r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after field group");
  }
  return st;
}

TEST(Wire, FieldGroupsRoundTrip) {
  Rng rng(0x11e7);
  const Config cfg = MakeConfig(&rng, false, false);
  const std::vector<std::string> payloads = EncodeFieldGroups(cfg);
  for (size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_TRUE(DecodeFieldGroup(i, payloads[i]).ok())
        << "group " << i << ": "
        << DecodeFieldGroup(i, payloads[i]).ToString();
  }
}

TEST(Wire, RelationRoundTripPreservesEveryBit) {
  Rng rng(0x11e8);
  const Config cfg = MakeConfig(&rng, true, true);
  std::string buf;
  WireWriter w(&buf);
  WriteRelation(cfg.r, &w);
  WireReader r(buf);
  Relation decoded{Schema::Anonymous(0)};
  ASSERT_TRUE(ReadRelation(&r, &decoded).ok()) << r.status().ToString();
  EXPECT_TRUE(r.AtEnd());
  ASSERT_EQ(decoded.size(), cfg.r.size());
  ASSERT_EQ(decoded.num_attributes(), cfg.r.num_attributes());
  for (RowId i = 0; i < static_cast<RowId>(cfg.r.size()); ++i) {
    EXPECT_EQ(decoded.join_key(i), cfg.r.join_key(i));
    for (int a = 0; a < cfg.r.num_attributes(); ++a) {
      const double lhs = decoded.attr(i, a);
      const double rhs = cfg.r.attr(i, a);
      EXPECT_EQ(std::memcmp(&lhs, &rhs, sizeof lhs), 0);
    }
  }
}

// Every truncation of every field group must decode to a non-OK Status —
// straight-line decoders over a bounds-checked reader can't crash, and a
// short payload must never pass as a complete one.
TEST(Wire, TruncatedPayloadsFailCleanly) {
  Rng rng(0x11e9);
  const Config cfg = MakeConfig(&rng, false, true);
  const std::vector<std::string> payloads = EncodeFieldGroups(cfg);
  for (size_t i = 0; i < payloads.size(); ++i) {
    const std::string& whole = payloads[i];
    // Dense sweep for small payloads, strided for relation-sized ones.
    const size_t step = whole.size() > 512 ? whole.size() / 257 + 1 : 1;
    for (size_t cut = 0; cut < whole.size(); cut += step) {
      const Status st = DecodeFieldGroup(i, whole.substr(0, cut));
      EXPECT_FALSE(st.ok()) << "group " << i << " cut at " << cut << " of "
                            << whole.size();
    }
  }
}

// Deterministic byte-flip fuzz: a corrupted payload may still decode (a
// flipped double bit is a different valid double) but must never crash,
// over-allocate on a forged element count, or leave the reader claiming OK
// with bytes unconsumed.
TEST(Wire, CorruptedPayloadsNeverCrash) {
  Rng rng(0x11ea);
  const Config cfg = MakeConfig(&rng, false, false);
  const std::vector<std::string> payloads = EncodeFieldGroups(cfg);
  Rng fuzz(0xfa22);
  for (size_t i = 0; i < payloads.size(); ++i) {
    for (int round = 0; round < 200; ++round) {
      std::string mutated = payloads[i];
      const int flips = 1 + static_cast<int>(fuzz.NextBelow(4));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = fuzz.NextBelow(mutated.size());
        mutated[pos] = static_cast<char>(
            static_cast<uint8_t>(mutated[pos]) ^
            (1u << fuzz.NextBelow(8)));
      }
      // The only requirement: a Status comes back, OK or not, sans crash.
      (void)DecodeFieldGroup(i, mutated);
    }
  }
  // Forged count: a batch claiming 2^31 tuples backed by 8 bytes must be
  // rejected before any allocation proportional to the claim.
  std::string forged;
  WireWriter w(&forged);
  w.PutU32(2);            // k
  w.PutU32(0x80000000u);  // count
  w.PutU64(0);
  const Status st = DecodeFieldGroup(5, forged);
  EXPECT_FALSE(st.ok());
}

// A forged row count chosen so rows * (width+1) * 8 wraps uint64 to 0 must
// still be rejected — the bounds check has to divide, not multiply, or the
// wrapped product sails past it into a gigantic allocation.
TEST(Wire, OverflowedRowCountRejectedBeforeAllocation) {
  std::string forged;
  WireWriter w(&forged);
  w.PutU32(3);  // width: per-row cost 32 bytes
  for (const char* name : {"a", "b", "c"}) w.PutString(name);
  w.PutString("k");                 // join attribute
  w.PutU64(1ull << 61);             // rows: 2^61 * 32 == 2^66 ≡ 0 (mod 2^64)
  WireReader r(forged);
  Relation rel{Schema::Anonymous(0)};
  EXPECT_FALSE(ReadRelation(&r, &rel).ok());
  EXPECT_FALSE(r.status().ok());
}

TEST(Net, ParseWorkerListValidates) {
  auto list = ParseWorkerList("127.0.0.1:9000, localhost:9001 ,[::1]:9002");
  ASSERT_TRUE(list.ok()) << list.status().ToString();
  EXPECT_EQ(list->size(), 3u);
  EXPECT_EQ((*list)[0], "127.0.0.1:9000");

  EXPECT_TRUE(ParseWorkerList("")->empty());
  EXPECT_FALSE(ParseWorkerList("no-port").ok());
  EXPECT_FALSE(ParseWorkerList("host:notaport").ok());
  EXPECT_FALSE(ParseWorkerList("host:70000").ok());
  // Stray commas are tolerated, not endpoints.
  auto gaps = ParseWorkerList("host:9000,,host:9001");
  ASSERT_TRUE(gaps.ok());
  EXPECT_EQ(gaps->size(), 2u);
}

// --- Loopback distributed execution ----------------------------------------

std::string Endpoint(const WorkerServer& server) {
  return "127.0.0.1:" + std::to_string(server.port());
}

std::unique_ptr<WorkerServer> MustStartWorker() {
  WorkerServerOptions options;
  options.port = 0;
  // Small slices + fast heartbeats so the kill tests cross many pump
  // boundaries and the soak stays quick.
  options.pump_slice_pairs = 1024;
  options.heartbeat_interval = std::chrono::milliseconds(50);
  auto server = WorkerServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return server.MoveValue();
}

// A clean distributed run over two loopback workers is bit-identical to the
// in-process sharded run: same delivered set, same summed ProgXeStats, full
// remote coverage, zero retries — and the transport actually carried it
// (net counters moved).
TEST(Net, DistributedRunIsBitIdenticalToInProcess) {
  Rng rng(0xd157);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  constexpr int kShards = 4;

  ShardOptions local;
  local.num_shards = kShards;
  auto in_process = OpenProgXeStream(cfg.query(), options, local);
  ASSERT_TRUE(in_process.ok());
  const IdSet reference = SortedIds(DrainStream(in_process->get(), 0, 0));
  const ProgXeStats reference_stats = (*in_process)->stats();

  auto worker_a = MustStartWorker();
  auto worker_b = MustStartWorker();
  const NetStatsSnapshot before = SnapshotNetStats();

  ShardOptions distributed;
  distributed.num_shards = kShards;
  distributed.workers = {Endpoint(*worker_a), Endpoint(*worker_b)};
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  // Budgeted drain: slicing must stay invisible over the wire too.
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 7, 96));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());
  ExpectSameStats((*stream)->stats(), reference_stats, "distributed");

  const ShardCoverage coverage = (*stream)->coverage();
  EXPECT_TRUE(coverage.complete());
  EXPECT_EQ(coverage.shards, kShards);
  EXPECT_EQ(coverage.completed, kShards);
  EXPECT_EQ(coverage.remote, kShards);
  EXPECT_EQ(coverage.retries, 0u);

  const NetStatsSnapshot after = SnapshotNetStats();
  EXPECT_GT(after.frames_sent, before.frames_sent);
  EXPECT_GT(after.bytes_received, before.bytes_received);
  EXPECT_GT(after.rtt_count, before.rtt_count);
}

// The pool caches handshaken links across streams: a second query against
// the same workers reuses connections instead of redialing.
TEST(Net, WorkerPoolReusesConnectionsAcrossStreams) {
  Rng rng(0xd158);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;
  auto worker = MustStartWorker();
  auto pool = std::make_shared<WorkerPool>();

  ShardOptions distributed;
  distributed.num_shards = 2;
  distributed.workers = {Endpoint(*worker)};
  distributed.worker_pool = pool;
  for (int round = 0; round < 2; ++round) {
    auto stream = OpenProgXeStream(cfg.query(), options, distributed);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    (void)DrainStream(stream->get(), 0, 0);
    EXPECT_TRUE((*stream)->last_status().ok());
  }
  EXPECT_GT(pool->reuses(), 0u);
  EXPECT_LE(pool->connections_created(), 2u);
}

// Worker death mid-stream: severed connections surface as retryable
// kUnavailable, the shards re-open on the *surviving* worker (endpoint
// rotation) and idempotent replay keeps the delivered set bit-identical —
// zero retractions, zero duplicates.
TEST(Net, WorkerKillMidStreamRecoversOnSurvivor) {
  Rng rng(0xd159);
  // Low sigma: many join-key classes, so every shard owns real work and the
  // kill below is guaranteed to hit shards that still have pumps ahead.
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;
  constexpr int kShards = 4;

  ShardOptions local;
  local.num_shards = kShards;
  auto in_process = OpenProgXeStream(cfg.query(), options, local);
  ASSERT_TRUE(in_process.ok());
  const IdSet reference = SortedIds(DrainStream(in_process->get(), 0, 0));

  auto doomed = MustStartWorker();
  auto survivor = MustStartWorker();
  ShardOptions distributed;
  distributed.num_shards = kShards;
  distributed.workers = {Endpoint(*doomed), Endpoint(*survivor)};
  distributed.max_retries = 8;
  distributed.retry_backoff = std::chrono::milliseconds(1);
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  // Kill after open, before any pump: every shard the doomed worker held
  // must fail its first pump and replay from scratch elsewhere.
  doomed->Stop();

  const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 128));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());
  const ShardCoverage coverage = (*stream)->coverage();
  EXPECT_TRUE(coverage.complete());
  EXPECT_EQ(coverage.completed, kShards);
  EXPECT_GT(coverage.retries, 0u);
}

// Retry exhaustion against a dead endpoint under allow_partial: the stream
// completes as a *partial* with exact per-shard accounting, and delivers
// exactly the covered shards' skyline (the same contract as local
// abandonment — transport failures ride the same path).
TEST(Net, RemoteRetryExhaustionYieldsExactPartialCoverage) {
  Rng rng(0xd15a);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  constexpr int kShards = 2;

  // Covered-only reference: drop every row whose key hashes to shard 1
  // (the shard that will dial the dead endpoint), run unsharded, map the
  // renumbered ids back.
  std::vector<RowId> keep_r, keep_t;
  for (RowId i = 0; i < static_cast<RowId>(cfg.r.size()); ++i) {
    if (ShardOfKey(cfg.r.join_key(i), kShards) != 1) keep_r.push_back(i);
  }
  for (RowId i = 0; i < static_cast<RowId>(cfg.t.size()); ++i) {
    if (ShardOfKey(cfg.t.join_key(i), kShards) != 1) keep_t.push_back(i);
  }
  ASSERT_LT(keep_r.size(), cfg.r.size());
  std::vector<RowId> r_orig, t_orig;
  Config covered;
  covered.r = cfg.r.Select(keep_r, &r_orig);
  covered.t = cfg.t.Select(keep_t, &t_orig);
  covered.map = cfg.map;
  covered.pref = cfg.pref;
  auto covered_session = ProgXeSession::Open(covered.query(), options);
  ASSERT_TRUE(covered_session.ok());
  IdSet reference;
  for (const auto& [r_id, t_id] :
       SortedIds(DrainStream(covered_session->get(), 0, 0))) {
    reference.emplace_back(r_orig[r_id], t_orig[t_id]);
  }
  std::sort(reference.begin(), reference.end());

  auto live = MustStartWorker();
  // A port that *was* bound and no longer is: connection refused, fast.
  auto dead = MustStartWorker();
  const std::string dead_endpoint = Endpoint(*dead);
  dead->Stop();
  dead.reset();

  // Shard i dials workers[i % 2]: shard 0 -> live, shard 1 -> dead; with
  // max_retries=0 there is no rotation onto the live worker, so shard 1 is
  // deterministically abandoned.
  ShardOptions distributed;
  distributed.num_shards = kShards;
  distributed.workers = {Endpoint(*live), dead_endpoint};
  distributed.max_retries = 0;
  distributed.allow_partial = true;
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 0));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());

  const ShardCoverage coverage = (*stream)->coverage();
  EXPECT_FALSE(coverage.complete());
  EXPECT_EQ(coverage.shards, kShards);
  EXPECT_EQ(coverage.completed, kShards - 1);
  EXPECT_EQ(coverage.abandoned, 1);
  ASSERT_EQ(coverage.abandoned_shards.size(), 1u);
  EXPECT_EQ(coverage.abandoned_shards[0], 1);
  EXPECT_EQ(coverage.remote, kShards);
}

// Without allow_partial the same dead endpoint kills the stream with the
// transport's synthesized kUnavailable — the coordinator-side failure
// detector, observable end to end.
TEST(Net, DeadWorkerWithoutPartialFailsWithUnavailable) {
  Rng rng(0xd15b);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;

  auto dead = MustStartWorker();
  const std::string dead_endpoint = Endpoint(*dead);
  dead->Stop();
  dead.reset();

  ShardOptions distributed;
  distributed.num_shards = 2;
  distributed.workers = {dead_endpoint};
  distributed.max_retries = 1;
  distributed.retry_backoff = std::chrono::milliseconds(0);
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok())
      << "transient open failures must not fail Open itself";
  std::vector<ResultTuple> batch;
  EXPECT_EQ((*stream)->NextBatch(0, 0, &batch), 0u);
  EXPECT_TRUE((*stream)->Finished());
  const Status death = (*stream)->last_status();
  ASSERT_FALSE(death.ok());
  EXPECT_TRUE(death.IsUnavailable());
}

// A worker survives a *semantic* open failure (bad query) with the link
// intact: the error comes back as a Status, not a severed connection, and
// the very same connection then serves a healthy session.
TEST(Net, SemanticOpenFailureKeepsTheLinkUsable) {
  Rng rng(0xd15c);
  const Config cfg = MakeConfig(&rng, false, false);
  auto worker = MustStartWorker();
  auto pool = std::make_shared<WorkerPool>();

  // Dimensionality mismatch: preference arity != map arity.
  std::vector<Direction> dirs(cfg.map.output_dimensions() + 1,
                              Direction::kLowest);
  ProgXeOptions options;
  options.seed = 0xfeed;
  auto bad = RemoteShardStream::Open(pool, Endpoint(*worker), 0, cfg.r,
                                     cfg.t, cfg.map, Preference(dirs),
                                     options);
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().IsUnavailable())
      << "semantic failures must not masquerade as transport death: "
      << bad.status().ToString();

  auto good = RemoteShardStream::Open(pool, Endpoint(*worker), 0, cfg.r,
                                      cfg.t, cfg.map, cfg.pref, options);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(pool->connections_created(), 1u)
      << "the post-failure open must reuse the surviving link";
  (*good)->Close();
}

// --- Checkpointed remote recovery + transport chaos -------------------------

std::shared_ptr<FaultInjector> MustParseFaults(const std::string& spec,
                                               uint64_t seed) {
  auto injector = FaultInjector::Parse(spec, seed);
  EXPECT_TRUE(injector.ok()) << injector.status().ToString();
  return injector.MoveValue();
}

/// Installs a net.* chaos injector for the enclosing scope; the nullptr
/// reset on destruction keeps chaos from leaking into later tests.
class ScopedNetChaos {
 public:
  explicit ScopedNetChaos(std::shared_ptr<FaultInjector> injector)
      : injector_(std::move(injector)) {
    SetNetFaultInjectorForTest(injector_.get());
  }
  ~ScopedNetChaos() { SetNetFaultInjectorForTest(nullptr); }

 private:
  std::shared_ptr<FaultInjector> injector_;
};

// Kill a worker after real pump progress: the displaced shards re-open on
// the survivor *with their wire-shipped checkpoints*, so across the sweep
// at least one resume must skip processed regions (replay_pairs_saved > 0)
// — and every delivered set stays bit-identical to the in-process run.
TEST(Net, WorkerKillMidStreamResumesFromCheckpoint) {
  uint64_t total_retries = 0;
  uint64_t total_saved = 0;
  for (uint64_t seed : {uint64_t{1}, uint64_t{4}, uint64_t{12}}) {
    Rng rng(0xd15d + seed);
    const Config cfg = MakeConfig(&rng, false, seed % 2 == 0);
    ProgXeOptions options;
    options.seed = 0xfeed;
    constexpr int kShards = 4;

    ShardOptions local;
    local.num_shards = kShards;
    auto in_process = OpenProgXeStream(cfg.query(), options, local);
    ASSERT_TRUE(in_process.ok());
    const IdSet reference = SortedIds(DrainStream(in_process->get(), 0, 0));

    auto doomed = MustStartWorker();
    auto survivor = MustStartWorker();
    ShardOptions distributed;
    distributed.num_shards = kShards;
    distributed.workers = {Endpoint(*doomed), Endpoint(*survivor)};
    distributed.max_retries = 8;
    distributed.retry_backoff = std::chrono::milliseconds(1);
    auto stream = OpenProgXeStream(cfg.query(), options, distributed);
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();

    // Pump a couple of budgeted rounds so the doomed worker's shards have
    // checkpoints on the coordinator, then pull the plug mid-stream.
    std::vector<ResultTuple> batch;
    IdSet delivered;
    int pumps = 0;
    while (!(*stream)->Finished()) {
      (*stream)->NextBatch(0, 160, &batch);
      for (const ResultTuple& res : batch) {
        delivered.emplace_back(res.r_id, res.t_id);
      }
      if (++pumps == 2 && doomed != nullptr) {
        doomed->Stop();
        doomed.reset();
      }
    }
    std::sort(delivered.begin(), delivered.end());
    EXPECT_EQ(delivered, reference) << "seed=" << seed;
    EXPECT_TRUE((*stream)->last_status().ok());
    const ShardCoverage coverage = (*stream)->coverage();
    EXPECT_TRUE(coverage.complete()) << "seed=" << seed;
    total_retries += coverage.retries;
    total_saved += coverage.replay_pairs_saved;
  }
  // The kill schedule must actually displace shards, and at least one
  // re-open must resume from a checkpoint instead of replaying from
  // scratch, or the remote resume path went untested.
  EXPECT_GT(total_retries, 0u);
  EXPECT_GT(total_saved, 0u);
}

// A coordinator pinned to wire v1 never ships checkpoints: the same kill
// choreography still recovers bit-identically, but via full replay
// (replay_pairs_saved stays 0) — the downlevel path must remain sound.
TEST(Net, V1PinnedPoolRecoversViaFullReplay) {
  Rng rng(0xd15e);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;
  constexpr int kShards = 4;

  ShardOptions local;
  local.num_shards = kShards;
  auto in_process = OpenProgXeStream(cfg.query(), options, local);
  ASSERT_TRUE(in_process.ok());
  const IdSet reference = SortedIds(DrainStream(in_process->get(), 0, 0));

  auto doomed = MustStartWorker();
  auto survivor = MustStartWorker();
  NetOptions net;
  net.max_wire_version = 1;
  auto pool = std::make_shared<WorkerPool>(net);

  ShardOptions distributed;
  distributed.num_shards = kShards;
  distributed.workers = {Endpoint(*doomed), Endpoint(*survivor)};
  distributed.worker_pool = pool;
  distributed.max_retries = 8;
  distributed.retry_backoff = std::chrono::milliseconds(1);
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  std::vector<ResultTuple> batch;
  IdSet delivered;
  int pumps = 0;
  while (!(*stream)->Finished()) {
    (*stream)->NextBatch(0, 160, &batch);
    for (const ResultTuple& res : batch) {
      delivered.emplace_back(res.r_id, res.t_id);
    }
    if (++pumps == 2 && doomed != nullptr) {
      doomed->Stop();
      doomed.reset();
    }
  }
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());
  const ShardCoverage coverage = (*stream)->coverage();
  EXPECT_TRUE(coverage.complete());
  EXPECT_EQ(coverage.replay_pairs_saved, 0u)
      << "a v1 link cannot ship checkpoints";
}

// Loopback run under seeded net.send/net.recv/net.frame chaos: torn
// writes, dropped reads and corrupt length prefixes on both sides of the
// link. The schedules are bounded (max=), so with enough retry budget the
// stream must complete bit-identically — no hangs, no retractions.
TEST(Net, TransportChaosLoopbackStaysExact) {
  Rng rng(0xd15f);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  constexpr int kShards = 4;

  ShardOptions local;
  local.num_shards = kShards;
  auto in_process = OpenProgXeStream(cfg.query(), options, local);
  ASSERT_TRUE(in_process.ok());
  const IdSet reference = SortedIds(DrainStream(in_process->get(), 0, 0));

  // The chaos scope must outlive the workers: their handler threads consult
  // the process-wide injector on every RecvFrame, so it is installed before
  // the first worker starts and removed only after the last one has joined.
  ScopedNetChaos chaos(MustParseFaults(
      "net.send:p=0.2,max=4;net.recv:p=0.2,max=4;net.frame:p=0.2,max=3",
      0xc4a05));
  auto worker_a = MustStartWorker();
  auto worker_b = MustStartWorker();
  NetOptions net;
  net.circuit_cooldown = std::chrono::milliseconds(5);
  auto pool = std::make_shared<WorkerPool>(net);

  ShardOptions distributed;
  distributed.num_shards = kShards;
  distributed.workers = {Endpoint(*worker_a), Endpoint(*worker_b)};
  distributed.worker_pool = pool;
  distributed.max_retries = 16;
  distributed.retry_backoff = std::chrono::milliseconds(1);
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 128));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());
  EXPECT_TRUE((*stream)->coverage().complete());
}

// The circuit breaker: a dead endpoint accumulates consecutive transport
// failures, its circuit opens (gauge + counter move), and shard placement
// routes around it onto the live worker — the stream still delivers the
// full bit-identical skyline.
TEST(Net, CircuitBreakerRoutesAroundDeadEndpoint) {
  Rng rng(0xd160);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;
  constexpr int kShards = 2;

  ShardOptions local;
  local.num_shards = kShards;
  auto in_process = OpenProgXeStream(cfg.query(), options, local);
  ASSERT_TRUE(in_process.ok());
  const IdSet reference = SortedIds(DrainStream(in_process->get(), 0, 0));

  auto live = MustStartWorker();
  auto dead = MustStartWorker();
  const std::string dead_endpoint = Endpoint(*dead);
  dead->Stop();
  dead.reset();

  NetOptions net;
  net.circuit_failure_threshold = 1;
  net.circuit_cooldown = std::chrono::seconds(60);  // stays open to the end
  auto pool = std::make_shared<WorkerPool>(net);
  const NetStatsSnapshot before = SnapshotNetStats();

  // Shard 0 dials workers[0] (the dead endpoint) first; the breaker must
  // open on the dial failure and the retry must route onto the live one.
  ShardOptions distributed;
  distributed.num_shards = kShards;
  distributed.workers = {dead_endpoint, Endpoint(*live)};
  distributed.worker_pool = pool;
  distributed.max_retries = 6;
  distributed.retry_backoff = std::chrono::milliseconds(0);
  auto stream = OpenProgXeStream(cfg.query(), options, distributed);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 0));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());
  EXPECT_TRUE((*stream)->coverage().complete());

  EXPECT_TRUE(pool->IsOpen(dead_endpoint));
  EXPECT_EQ(pool->open_circuits(), 1);
  const NetStatsSnapshot after = SnapshotNetStats();
  EXPECT_GT(after.circuits_opened, before.circuits_opened);
  EXPECT_GT(after.open_circuits, before.open_circuits);
  // Drop every co-owner (stream, options copy, local handle): the last
  // teardown must release the open-circuits gauge.
  stream->reset();
  distributed.worker_pool.reset();
  pool.reset();
  EXPECT_EQ(SnapshotNetStats().open_circuits, before.open_circuits);
}

}  // namespace
}  // namespace progxe
