// Tests for the observability layer (obs/trace.h, obs/metrics.h): span
// recording, ring-overflow drop accounting, multi-thread interleaving
// (TSan-checked in CI; PROGXE_TEST_THREADS widens the pool), trace_event
// JSON validity, the tracing-on/off equivalence guarantee, and the metrics
// registry's Prometheus exposition.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "equivalence_common.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "progxe/executor.h"
#include "service/scheduler.h"

namespace progxe {
namespace {

int TestThreads() {
  const char* env = std::getenv("PROGXE_TEST_THREADS");
  const int n = env != nullptr ? std::atoi(env) : 0;
  return n >= 1 ? n : 4;
}

/// Minimal recursive-descent JSON syntax checker: accepts exactly one JSON
/// value spanning the whole input. No DOM — enough to prove an export would
/// parse in Perfetto rather than die on a stray comma or unescaped quote.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}
  bool Valid() {
    pos_ = 0;
    return Value() && (SkipWs(), pos_ == s_.size());
  }

 private:
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') return ++pos_, true;
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') return ++pos_, true;
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }
  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Literal(const char* lit) {
    const size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Every trace test disarms and flushes on exit so state never leaks into
/// the next test (the recorder is process-wide by design).
struct TraceSession {
  explicit TraceSession(size_t cap = size_t{1} << 12) { Tracing::Start(cap); }
  ~TraceSession() { Tracing::Stop(); }
};

TEST(Trace, DisabledByDefaultAndFree) {
  ASSERT_FALSE(Tracing::active());
  // Disabled spans and instants must be inert: no session, no recording.
  {
    TraceSpan span(trace_cats::kRegion, "never.recorded");
    span.arg("x", 1);
  }
  TraceInstant(trace_cats::kCache, "never.recorded");
  Tracing::Start();
  EXPECT_EQ(Tracing::buffered(), 0u);
  EXPECT_EQ(Tracing::dropped(), 0u);
  Tracing::Stop();
}

TEST(Trace, RecordsSpansInstantsAndArgs) {
  TraceSession session;
  {
    TraceSpan span(trace_cats::kShard, "test.span");
    span.arg("shard", 3);
    span.arg("pairs", 1234);
  }
  TraceInstant(trace_cats::kCache, "test.instant", "entries", 7);
  Tracing::Stop();
  EXPECT_EQ(Tracing::buffered(), 2u);
  EXPECT_EQ(Tracing::dropped(), 0u);

  std::string json;
  Tracing::RenderJson(&json);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"test.instant\""), std::string::npos);
  EXPECT_NE(json.find("\"shard\""), std::string::npos);
  EXPECT_NE(json.find("1234"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
}

TEST(Trace, RingOverflowDropsOldestAndCounts) {
  Tracing::Start(/*events_per_thread=*/8);
  for (int i = 0; i < 100; ++i) {
    TraceInstant(trace_cats::kSched, "overflow.tick", "i", i);
  }
  Tracing::Stop();
  EXPECT_EQ(Tracing::buffered(), 8u);
  EXPECT_EQ(Tracing::dropped(), 92u);
  std::string json;
  Tracing::RenderJson(&json);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // Drop-oldest: the ring must hold the *last* 8 events.
  EXPECT_EQ(json.find("\"i\":92") == std::string::npos,
            false)  // oldest survivor
      << json;
  EXPECT_EQ(json.find("\"i\":91"), std::string::npos);  // dropped
  EXPECT_NE(json.find("\"dropped_events\":92"), std::string::npos);
}

TEST(Trace, RestartClearsThePreviousSession) {
  Tracing::Start(8);
  for (int i = 0; i < 50; ++i) TraceInstant(trace_cats::kSched, "stale");
  Tracing::Stop();
  ASSERT_GT(Tracing::dropped(), 0u);
  Tracing::Start();
  EXPECT_EQ(Tracing::buffered(), 0u);
  EXPECT_EQ(Tracing::dropped(), 0u);
  std::string json;
  Tracing::RenderJson(&json);
  EXPECT_EQ(json.find("\"stale\""), std::string::npos);
  Tracing::Stop();
}

TEST(Trace, MultiThreadInterleavingIsCleanAndComplete) {
  const int threads = TestThreads();
  constexpr int kPerThread = 500;
  TraceSession session;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(trace_cats::kPipeline, "mt.span");
        span.arg("thread", t);
        span.arg("i", i);
      }
    });
  }
  // Concurrent export while writers are live: per-buffer mutexes make this
  // safe (and TSan verifies it).
  std::string mid;
  Tracing::RenderJson(&mid);
  EXPECT_TRUE(JsonChecker(mid).Valid());
  for (std::thread& th : pool) th.join();
  Tracing::Stop();
  EXPECT_EQ(Tracing::buffered(),
            static_cast<uint64_t>(threads) * kPerThread);
  EXPECT_EQ(Tracing::dropped(), 0u);
  std::string json;
  Tracing::RenderJson(&json);
  EXPECT_TRUE(JsonChecker(json).Valid());
  // Every recording thread exports its own named track.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(Trace, WriteJsonRoundTripsThroughAFile) {
  TraceSession session;
  { TraceSpan span(trace_cats::kPrepare, "file.span"); }
  Tracing::Stop();
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(Tracing::WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_TRUE(JsonChecker(content).Valid()) << content;
  EXPECT_NE(content.find("\"file.span\""), std::string::npos);
  // An unwritable path must surface as an error, not a silent no-op.
  EXPECT_FALSE(Tracing::WriteJson("/nonexistent-dir/trace.json").ok());
}

// The observability contract: tracing observes, never participates.
// Results and every ProgXeStats counter must be bit-identical with tracing
// armed and disarmed.
TEST(Trace, TracingOnAndOffAreBitIdentical) {
  Rng rng(0x0b5e7e57);
  for (int round = 0; round < 3; ++round) {
    const test::Config cfg = test::MakeConfig(&rng, round == 1, round == 2);
    ProgXeOptions options;
    options.num_threads = round == 2 ? 3 : 1;

    ProgXeStats stats_off;
    auto off = RunProgXe(cfg.query(), options, &stats_off);
    ASSERT_TRUE(off.ok());

    Tracing::Start();
    ProgXeStats stats_on;
    auto on = RunProgXe(cfg.query(), options, &stats_on);
    Tracing::Stop();
    ASSERT_TRUE(on.ok());
    EXPECT_GT(Tracing::buffered(), 0u);  // the run really was traced

    test::ExpectSameStats(stats_off, stats_on, "tracing on vs off");
    ASSERT_EQ(off->size(), on->size());
    for (size_t i = 0; i < off->size(); ++i) {
      EXPECT_EQ((*off)[i].r_id, (*on)[i].r_id) << i;
      EXPECT_EQ((*off)[i].t_id, (*on)[i].t_id) << i;
      EXPECT_EQ((*off)[i].values, (*on)[i].values) << i;
    }
  }
}

TEST(Metrics, RegistryIsIdempotentAndTyped) {
  MetricsRegistry reg;
  Metric* c = reg.GetCounter("test_total", "a counter");
  EXPECT_EQ(c, reg.GetCounter("test_total", "a counter"));
  c->Add(2.0);
  c->Increment();
  EXPECT_DOUBLE_EQ(c->value(), 3.0);
  Metric* g = reg.GetGauge("test_gauge", "a gauge");
  g->Set(42.0);
  g->Set(7.0);
  EXPECT_DOUBLE_EQ(g->value(), 7.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(Metrics, HistogramBucketsAndPrometheusRendering) {
  MetricsRegistry reg;
  HistogramMetric* h =
      reg.GetHistogram("test_seconds", "a histogram", {0.1, 1.0, 10.0});
  h->Observe(0.05);   // bucket le=0.1
  h->Observe(0.5);    // bucket le=1
  h->Observe(0.6);    // bucket le=1
  h->Observe(100.0);  // +Inf
  EXPECT_EQ(h->count(), 4u);
  reg.GetCounter("test_total", "a counter")->Add(5.0);

  std::string text;
  reg.RenderPrometheus(&text);
  EXPECT_NE(text.find("# HELP test_seconds a histogram"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_seconds histogram"), std::string::npos);
  // Cumulative buckets: 1, 3, 3, 4.
  EXPECT_NE(text.find("test_seconds_bucket{le=\"0.1\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_seconds_bucket{le=\"1\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("test_seconds_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("test_seconds_count 4"), std::string::npos) << text;
  EXPECT_NE(text.find("# TYPE test_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_total 5"), std::string::npos);
}

TEST(Metrics, FoldsEngineAndSchedulerSnapshots) {
  MetricsRegistry reg;
  ProgXeStats stats;
  stats.r_rows = 100;
  stats.join_pairs_generated = 5000;
  stats.results_emitted = 42;
  FoldProgXeStats(stats, &reg);

  SchedulerStats sched;
  sched.queued = 2;
  sched.slices = 10;
  sched.slice_latency_us_log2[3] = 10;  // 10 slices in [4, 8) us
  sched.prepare_hits = 6;
  FoldSchedulerStats(sched, &reg);

  ShardCoverage cov;
  cov.shards = 4;
  cov.completed = 3;
  cov.abandoned = 1;
  FoldShardCoverage(cov, &reg);
  FoldObservability(&reg);

  std::string text;
  reg.RenderPrometheus(&text);
  EXPECT_NE(text.find("progxe_executor_join_pairs_total 5000"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("progxe_executor_results_emitted_total 42"),
            std::string::npos);
  EXPECT_NE(text.find("progxe_scheduler_queued 2"), std::string::npos);
  EXPECT_NE(text.find("progxe_scheduler_slices_total 10"),
            std::string::npos);
  EXPECT_NE(text.find("progxe_scheduler_slice_latency_seconds_count 10"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("progxe_prepare_cache_hits_total 6"),
            std::string::npos);
  EXPECT_NE(text.find("progxe_shard_coverage_completed 3"),
            std::string::npos);
  EXPECT_NE(text.find("progxe_trace_dropped_events_total"),
            std::string::npos);
  EXPECT_NE(text.find("progxe_fault_fires_total"), std::string::npos);
  // Re-folding overwrites (snapshot semantics), never double-counts.
  FoldProgXeStats(stats, &reg);
  text.clear();
  reg.RenderPrometheus(&text);
  EXPECT_NE(text.find("progxe_executor_join_pairs_total 5000"),
            std::string::npos);
  // The whole exposition parses line-by-line: every non-comment line is
  // "name[{labels}] value".
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_GT(space, 0u) << line;
    char* endp = nullptr;
    std::strtod(line.c_str() + space + 1, &endp);
    EXPECT_EQ(*endp, '\0') << "non-numeric sample value: " << line;
  }
}

}  // namespace
}  // namespace progxe
