// Focused tests for ProgOrder (Algorithm 1) and ProgDetermine (Algorithm 2)
// behaviours that the end-to-end tests exercise only implicitly.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "elgraph/el_graph.h"
#include "harness/experiment.h"
#include "progxe/output_table.h"
#include "progxe/prog_determine.h"
#include "progxe/prog_order.h"

namespace progxe {
namespace {

// --- ProgDetermine over a hand-built 2-d scenario --------------------------

class ProgDetermineTest : public ::testing::Test {
 protected:
  ProgDetermineTest()
      : geometry_({Interval(0, 10), Interval(0, 10)}, 5),
        table_(geometry_,
               std::vector<uint8_t>(
                   static_cast<size_t>(geometry_.total_cells()), 0),
               &stats_),
        determine_(&table_) {}

  Region MakeRegion(int32_t id, double lo_x, double lo_y, double hi_x,
                    double hi_y) {
    Region region;
    region.id = id;
    region.bounds = {Interval(lo_x, hi_x), Interval(lo_y, hi_y)};
    region.lo_cell.resize(2);
    region.hi_cell.resize(2);
    for (int d = 0; d < 2; ++d) {
      geometry_.CoordRange(d, region.bounds[static_cast<size_t>(d)],
                           &region.lo_cell[static_cast<size_t>(d)],
                           &region.hi_cell[static_cast<size_t>(d)]);
    }
    region.guaranteed = true;
    return region;
  }

  CellIndex CellAt(double x, double y) const {
    const double pt[] = {x, y};
    CellCoord coords[2];
    geometry_.CoordsOf(pt, coords);
    return geometry_.IndexOf(coords);
  }

  ProgXeStats stats_;
  GridGeometry geometry_;
  OutputTable table_;
  ProgDetermine determine_;
};

TEST_F(ProgDetermineTest, FlushesImmediatelyWhenConeClear) {
  // One region near the origin; after it completes its populated cells have
  // an empty dominator cone and flush at once.
  std::vector<Region> regions{MakeRegion(0, 0, 0, 3.9, 3.9)};
  table_.InitCoverage(regions);
  const double pt[] = {1.0, 1.0};
  table_.Insert(pt, 0, 0);
  auto settled = table_.ReleaseRegionCoverage(regions[0]);
  auto flush = determine_.OnCellsSettled(settled);
  ASSERT_EQ(flush.size(), 1u);
  EXPECT_EQ(flush[0], CellAt(1.0, 1.0));
  EXPECT_EQ(determine_.PendingCount(), 0u);
}

TEST_F(ProgDetermineTest, HoldsCellUntilThreateningRegionCompletes) {
  // Region A covers upper-right cells; region B covers cells in A's
  // dominator cone. A's populated cell must wait for B.
  std::vector<Region> regions{MakeRegion(0, 4.0, 4.0, 7.9, 7.9),
                              MakeRegion(1, 0.0, 0.0, 3.9, 3.9)};
  table_.InitCoverage(regions);
  const double pt[] = {5.0, 5.0};
  table_.Insert(pt, 0, 0);

  auto flush_a = determine_.OnCellsSettled(
      table_.ReleaseRegionCoverage(regions[0]));
  EXPECT_TRUE(flush_a.empty()) << "flushed while region B could still fill "
                                  "the dominator cone";
  EXPECT_EQ(determine_.PendingCount(), 1u);

  auto flush_b = determine_.OnCellsSettled(
      table_.ReleaseRegionCoverage(regions[1]));
  ASSERT_EQ(flush_b.size(), 1u);
  EXPECT_EQ(flush_b[0], CellAt(5.0, 5.0));
  EXPECT_EQ(determine_.PendingCount(), 0u);
}

TEST_F(ProgDetermineTest, SliceNeighborAlsoBlocks) {
  // B shares a row (same y-range) with A's populated cell: only partially
  // threatening, but ProgDetermine must still wait (Set 3 of Figure 9).
  std::vector<Region> regions{MakeRegion(0, 4.0, 0.0, 7.9, 1.9),
                              MakeRegion(1, 0.0, 0.0, 1.9, 1.9)};
  table_.InitCoverage(regions);
  const double pt[] = {5.0, 1.0};
  table_.Insert(pt, 0, 0);
  EXPECT_TRUE(determine_
                  .OnCellsSettled(table_.ReleaseRegionCoverage(regions[0]))
                  .empty());
  EXPECT_EQ(determine_
                .OnCellsSettled(table_.ReleaseRegionCoverage(regions[1]))
                .size(),
            1u);
}

TEST_F(ProgDetermineTest, MarkedCellsNeverFlush) {
  std::vector<Region> regions{MakeRegion(0, 0, 0, 7.9, 7.9)};
  table_.InitCoverage(regions);
  const double low[] = {1.0, 1.0};
  const double high[] = {5.0, 5.0};
  table_.Insert(low, 0, 0);
  table_.Insert(high, 1, 1);  // frontier-discarded, cell marked
  determine_.OnCellsMarked(table_.DrainMarkedEvents());
  auto flush = determine_.OnCellsSettled(
      table_.ReleaseRegionCoverage(regions[0]));
  ASSERT_EQ(flush.size(), 1u);  // only the low cell
  EXPECT_EQ(flush[0], CellAt(1.0, 1.0));
}

TEST_F(ProgDetermineTest, UnpopulatedSettledCellsAreIgnored) {
  std::vector<Region> regions{MakeRegion(0, 0, 0, 7.9, 7.9)};
  table_.InitCoverage(regions);
  auto flush = determine_.OnCellsSettled(
      table_.ReleaseRegionCoverage(regions[0]));
  EXPECT_TRUE(flush.empty());
  EXPECT_EQ(determine_.PendingCount(), 0u);
}

// --- ProgOrder ranking behaviour -------------------------------------------

TEST(ProgOrder, PrefersUnthreatenedCheapRegions) {
  // Build a scenario where region 0 sits alone near the origin (high
  // benefit: all cells exclusively its own) and region 1 overlaps a third
  // region (reduced ProgCount). ProgOrder must pick region 0 first.
  ProgXeStats stats;
  GridGeometry geometry({Interval(0, 10), Interval(0, 10)}, 5);
  OutputTable table(
      geometry,
      std::vector<uint8_t>(static_cast<size_t>(geometry.total_cells()), 0),
      &stats);

  auto mk = [&](int32_t id, double lo_x, double lo_y, double hi_x,
                double hi_y) {
    Region region;
    region.id = id;
    region.bounds = {Interval(lo_x, hi_x), Interval(lo_y, hi_y)};
    region.lo_cell.resize(2);
    region.hi_cell.resize(2);
    for (int d = 0; d < 2; ++d) {
      geometry.CoordRange(d, region.bounds[static_cast<size_t>(d)],
                          &region.lo_cell[static_cast<size_t>(d)],
                          &region.hi_cell[static_cast<size_t>(d)]);
    }
    region.guaranteed = true;
    return region;
  };
  // Disjoint, mutually incomparable boxes (anti-diagonal): no elimination
  // edges, so all are roots and ranking decides alone.
  std::vector<Region> regions{
      mk(0, 0.0, 8.0, 1.9, 9.9),   // top-left, alone
      mk(1, 8.0, 0.0, 9.9, 1.9),   // bottom-right...
      mk(2, 8.0, 0.0, 9.9, 1.9),   // ...overlapped by region 2 exactly
  };
  table.InitCoverage(regions);
  ElGraph graph(regions);
  CostModelParams cost;
  cost.sigma = 0.01;
  cost.cells_per_dim = 5;
  cost.dims = 2;
  // Equal partition sizes: benefit differences come from ProgCount only.
  ProgOrder order(&regions, &graph, &table, cost, {100, 100, 100},
                  {100, 100, 100}, OrderingMode::kProgOrder, 1, &stats);

  EXPECT_GT(order.ComputeProgCount(regions[0]), 0);
  EXPECT_EQ(order.ComputeProgCount(regions[1]), 0);  // fully shared w/ 2
  const int32_t first = order.PopNext();
  EXPECT_EQ(first, 0);
}

TEST(ProgOrder, RandomModeVisitsEveryActiveRegionOnce) {
  ProgXeStats stats;
  GridGeometry geometry({Interval(0, 10)}, 4);
  OutputTable table(
      geometry,
      std::vector<uint8_t>(static_cast<size_t>(geometry.total_cells()), 0),
      &stats);
  std::vector<Region> regions;
  for (int32_t i = 0; i < 20; ++i) {
    Region region;
    region.id = i;
    region.bounds = {Interval(0, 10)};
    region.lo_cell = {0};
    region.hi_cell = {3};
    region.guaranteed = true;
    if (i % 5 == 0) region.pruned = true;
    regions.push_back(region);
  }
  ProgOrder order(&regions, nullptr, &table, CostModelParams(), {}, {},
                  OrderingMode::kRandom, 99, &stats);
  std::set<int32_t> seen;
  for (;;) {
    int32_t id = order.PopNext();
    if (id < 0) break;
    EXPECT_TRUE(seen.insert(id).second);
    EXPECT_TRUE(regions[static_cast<size_t>(id)].Active());
    regions[static_cast<size_t>(id)].processed = true;
  }
  EXPECT_EQ(seen.size(), 16u);  // 20 minus 4 pruned
}

TEST(ProgOrder, OrderingImprovesEarlyOutputOnAntiCorrelated) {
  // End-to-end shape check (Figure 10.c): with ordering, the first half of
  // results arrives in fewer join pairs' worth of work... measured here by
  // the fraction of results already emitted when 50% of wall time elapsed.
  WorkloadParams params;
  params.distribution = Distribution::kAntiCorrelated;
  params.cardinality = 4000;
  params.dims = 4;
  params.sigma = 0.002;
  params.seed = 11;
  auto workload = Workload::Make(params);
  ASSERT_TRUE(workload.ok());

  auto ordered = RunAlgorithm(Algo::kProgXe, *workload);
  auto random = RunAlgorithm(Algo::kProgXeNoOrder, *workload);
  ASSERT_TRUE(ordered.ok());
  ASSERT_TRUE(random.ok());
  ASSERT_EQ(ordered->results.size(), random->results.size());
  // Ordered processing must reach 50% of its results in a smaller fraction
  // of its own total runtime than random ordering.
  const double ordered_frac =
      ordered->metrics.time_to_50pct / ordered->metrics.total_time;
  const double random_frac =
      random->metrics.time_to_50pct / random->metrics.total_time;
  EXPECT_LT(ordered_frac, random_frac);
}

}  // namespace
}  // namespace progxe
