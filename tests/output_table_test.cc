// Unit tests for the OutputTable: tuple-level processing (Section III-B),
// comparable-slice dominance, frontier marking, coverage bookkeeping (P5).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "progxe/output_table.h"

namespace progxe {
namespace {

class OutputTableTest : public ::testing::Test {
 protected:
  // 2-d grid over [0,10]^2 with 5 cells per dim (cell width 2).
  OutputTableTest()
      : geometry_({Interval(0, 10), Interval(0, 10)}, 5),
        table_(geometry_,
               std::vector<uint8_t>(static_cast<size_t>(geometry_.total_cells()), 0),
               &stats_) {}

  CellIndex CellAt(double x, double y) const {
    const double pt[] = {x, y};
    CellCoord coords[2];
    geometry_.CoordsOf(pt, coords);
    return geometry_.IndexOf(coords);
  }

  InsertOutcome Insert(double x, double y, RowId r = 0, RowId t = 0) {
    const double pt[] = {x, y};
    return table_.Insert(pt, r, t);
  }

  Region CoveringRegion(double lo_x, double lo_y, double hi_x, double hi_y) {
    Region region;
    region.id = next_region_id_++;
    region.bounds = {Interval(lo_x, hi_x), Interval(lo_y, hi_y)};
    region.lo_cell.resize(2);
    region.hi_cell.resize(2);
    for (int d = 0; d < 2; ++d) {
      geometry_.CoordRange(d, region.bounds[static_cast<size_t>(d)],
                           &region.lo_cell[static_cast<size_t>(d)],
                           &region.hi_cell[static_cast<size_t>(d)]);
    }
    region.guaranteed = true;
    return region;
  }

  ProgXeStats stats_;
  GridGeometry geometry_;
  OutputTable table_;
  int32_t next_region_id_ = 0;
};

TEST_F(OutputTableTest, InsertAndPopulate) {
  EXPECT_EQ(Insert(1.0, 1.0), InsertOutcome::kInserted);
  EXPECT_TRUE(table_.populated(CellAt(1.0, 1.0)));
  EXPECT_EQ(table_.AliveCount(CellAt(1.0, 1.0)), 1u);
  EXPECT_FALSE(table_.populated(CellAt(9.0, 9.0)));
}

TEST_F(OutputTableTest, StrictlyDominatedCellDiscardsViaFrontier) {
  EXPECT_EQ(Insert(1.0, 1.0), InsertOutcome::kInserted);  // cell (0,0)
  // Cell (2,2) is strictly above cell (0,0): frontier discard.
  EXPECT_EQ(Insert(5.0, 5.0), InsertOutcome::kDiscardedFrontier);
  EXPECT_EQ(stats_.tuples_discarded_frontier, 1u);
  EXPECT_TRUE(table_.marked(CellAt(5.0, 5.0)));
}

TEST_F(OutputTableTest, SliceDominationDiscardsTuple) {
  // Same row of cells (share y-coordinate): (1,1) vs (5,1.5) are in cells
  // (0,0) and (2,0) — same slab dim 1. The first dominates the second.
  EXPECT_EQ(Insert(1.0, 1.0), InsertOutcome::kInserted);
  EXPECT_EQ(Insert(5.0, 1.5), InsertOutcome::kDominated);
  EXPECT_EQ(stats_.tuples_dominated_on_insert, 1u);
}

TEST_F(OutputTableTest, IncomparableTuplesCoexistAcrossSlabs) {
  EXPECT_EQ(Insert(1.0, 5.0), InsertOutcome::kInserted);
  EXPECT_EQ(Insert(5.0, 1.0), InsertOutcome::kInserted);
  EXPECT_EQ(Insert(1.2, 4.8), InsertOutcome::kInserted);  // same cell, incomparable? (1.2>1.0, 4.8<5.0) yes
  EXPECT_EQ(table_.AliveCount(CellAt(1.0, 5.0)), 2u);
}

TEST_F(OutputTableTest, NewTupleEvictsDominatedInUpperSlice) {
  EXPECT_EQ(Insert(5.0, 1.5), InsertOutcome::kInserted);
  EXPECT_EQ(table_.AliveCount(CellAt(5.0, 1.5)), 1u);
  // New tuple in same slab (dim-1 coordinate 0) dominating the first.
  EXPECT_EQ(Insert(1.0, 1.0), InsertOutcome::kInserted);
  EXPECT_EQ(table_.AliveCount(CellAt(5.0, 1.5)), 0u);
  EXPECT_EQ(stats_.tuples_evicted, 1u);
}

TEST_F(OutputTableTest, EagerKillOfStrictlyAbovePopulatedCells) {
  EXPECT_EQ(Insert(5.0, 5.0), InsertOutcome::kInserted);
  EXPECT_EQ(Insert(9.0, 9.0), InsertOutcome::kDiscardedFrontier);
  // (9,9)'s cell marked by the frontier test...
  EXPECT_TRUE(table_.marked(CellAt(9.0, 9.0)));
  // Now a new populated cell strictly below (5,5) kills it.
  EXPECT_EQ(Insert(1.0, 1.0), InsertOutcome::kInserted);
  EXPECT_TRUE(table_.marked(CellAt(5.0, 5.0)));
  EXPECT_EQ(table_.AliveCount(CellAt(5.0, 5.0)), 0u);
  auto events = table_.DrainMarkedEvents();
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(OutputTableTest, MarkedCellDiscardsArrivals) {
  Insert(1.0, 1.0);
  Insert(5.0, 5.0);  // frontier-discard marks cell (2,2)
  EXPECT_EQ(Insert(5.5, 5.5), InsertOutcome::kDiscardedMarked);
  EXPECT_EQ(stats_.tuples_discarded_marked, 1u);
}

TEST_F(OutputTableTest, EqualTuplesBothSurvive) {
  EXPECT_EQ(Insert(3.0, 3.0, 1, 1), InsertOutcome::kInserted);
  EXPECT_EQ(Insert(3.0, 3.0, 2, 2), InsertOutcome::kInserted);
  EXPECT_EQ(table_.AliveCount(CellAt(3.0, 3.0)), 2u);
}

TEST_F(OutputTableTest, CoverageSettlesOnRelease) {
  std::vector<Region> regions;
  regions.push_back(CoveringRegion(0, 0, 3.9, 3.9));  // cells [0..1]^2
  regions.push_back(CoveringRegion(2, 2, 5.9, 5.9));  // cells [1..2]^2
  table_.InitCoverage(regions);
  EXPECT_EQ(table_.reg_count(CellAt(1, 1)), 1);
  EXPECT_EQ(table_.reg_count(CellAt(3, 3)), 2);  // overlap cell (1,1)
  EXPECT_EQ(table_.reg_count(CellAt(9, 9)), 0);

  auto settled0 = table_.ReleaseRegionCoverage(regions[0]);
  // Cells covered only by region 0 settle; the overlap cell does not.
  EXPECT_EQ(table_.reg_count(CellAt(3, 3)), 1);
  bool overlap_settled = false;
  for (CellIndex c : settled0) overlap_settled |= (c == CellAt(3, 3));
  EXPECT_FALSE(overlap_settled);
  EXPECT_EQ(settled0.size(), 3u);  // cells (0,0) (0,1) (1,0)

  auto settled1 = table_.ReleaseRegionCoverage(regions[1]);
  EXPECT_EQ(settled1.size(), 4u);  // all of region 1's cells now settle
  EXPECT_EQ(table_.reg_count(CellAt(3, 3)), 0);
}

TEST_F(OutputTableTest, InactiveRegionsNotCounted) {
  std::vector<Region> regions;
  regions.push_back(CoveringRegion(0, 0, 3.9, 3.9));
  regions.back().pruned = true;
  table_.InitCoverage(regions);
  EXPECT_EQ(table_.reg_count(CellAt(1, 1)), 0);
}

TEST_F(OutputTableTest, FlushEmitsAliveTuplesAndKeepsThemAsDominators) {
  Insert(1.0, 1.0, 10, 20);
  Insert(1.5, 0.5, 11, 21);  // same cell, incomparable
  const CellIndex c = CellAt(1.0, 1.0);
  std::vector<double> values;
  std::vector<CellTupleIds> ids;
  table_.FlushCell(c, &values, &ids);
  EXPECT_TRUE(table_.emitted(c));
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(values.size(), 4u);
  EXPECT_EQ(ids[0].r, 10u);
  EXPECT_EQ(ids[1].t, 21u);
  // Emitted tuples still dominate future arrivals in their slice.
  EXPECT_EQ(Insert(5.0, 1.2), InsertOutcome::kDominated);
}

TEST_F(OutputTableTest, RegionDominatedByFrontier) {
  Region far = CoveringRegion(6.0, 6.0, 9.0, 9.0);
  EXPECT_FALSE(table_.RegionDominatedByFrontier(far));
  Insert(1.0, 1.0);
  EXPECT_TRUE(table_.RegionDominatedByFrontier(far));
  // A region overlapping the populated cell's row is NOT wholly dominated.
  Region touching = CoveringRegion(1.0, 6.0, 3.0, 9.0);
  EXPECT_FALSE(table_.RegionDominatedByFrontier(touching));
}

TEST_F(OutputTableTest, InsertBatchMatchesSequentialInserts) {
  // Two tables driven with the same tuple stream — one per tuple, one in
  // blocks with ragged tails — must agree on every counter and cell state.
  Rng rng(123);
  std::vector<double> pts;
  std::vector<RowIdPair> ids;
  for (RowId i = 0; i < 500; ++i) {
    pts.push_back(rng.Uniform(0.0, 10.0));
    pts.push_back(rng.Uniform(0.0, 10.0));
    ids.push_back(RowIdPair{i, i});
  }
  ProgXeStats batch_stats;
  OutputTable batch_table(
      geometry_,
      std::vector<uint8_t>(static_cast<size_t>(geometry_.total_cells()), 0),
      &batch_stats);
  for (size_t i = 0; i < 500; i += 96) {
    const size_t m = std::min<size_t>(96, 500 - i);
    batch_table.InsertBatch(pts.data() + i * 2, ids.data() + i, m);
  }
  for (size_t i = 0; i < 500; ++i) {
    table_.Insert(pts.data() + i * 2, ids[i].r, ids[i].t);
  }
  EXPECT_EQ(stats_.tuples_discarded_marked, batch_stats.tuples_discarded_marked);
  EXPECT_EQ(stats_.tuples_discarded_frontier,
            batch_stats.tuples_discarded_frontier);
  EXPECT_EQ(stats_.tuples_dominated_on_insert,
            batch_stats.tuples_dominated_on_insert);
  EXPECT_EQ(stats_.tuples_evicted, batch_stats.tuples_evicted);
  EXPECT_EQ(table_.dom_counter()->comparisons,
            batch_table.dom_counter()->comparisons);
  auto pop_a = table_.PopulatedCells();
  auto pop_b = batch_table.PopulatedCells();
  std::sort(pop_a.begin(), pop_a.end());
  std::sort(pop_b.begin(), pop_b.end());
  EXPECT_EQ(pop_a, pop_b);
  for (CellIndex c : pop_a) {
    EXPECT_EQ(table_.AliveCount(c), batch_table.AliveCount(c)) << "cell " << c;
  }
}

TEST_F(OutputTableTest, PopulatedCellsListsLiveCellsOnly) {
  Insert(9.0, 1.0);
  Insert(1.0, 9.0);
  Insert(1.0, 1.0);  // evicts nothing (incomparable cells?) — (1,1) dominates (9,1)? 1<=9,1<=1 strict -> dominates!
  auto populated = table_.PopulatedCells();
  // (1,1) dominates both earlier tuples (1<=9 & 1<1 false... check: (1,1) vs
  // (9,1): dim0 1<9 strict, dim1 equal -> dominates; vs (1,9): dominates.
  EXPECT_EQ(populated.size(), 1u);
  EXPECT_EQ(populated[0], CellAt(1.0, 1.0));
}

}  // namespace
}  // namespace progxe
