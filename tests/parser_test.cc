// Tests for the PREFERRING-syntax SMJ query parser and binder.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generator.h"
#include "query/parser.h"

namespace progxe {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest()
      : suppliers_(Schema({"uPrice", "manTime"}, "country")),
        transporters_(Schema({"uShipCost", "shipTime"}, "country")) {
    const double s0[] = {10.0, 3.0};
    const double s1[] = {20.0, 1.0};
    suppliers_.Append(s0, 1);
    suppliers_.Append(s1, 1);
    const double t0[] = {4.0, 7.0};
    const double t1[] = {2.0, 9.0};
    transporters_.Append(t0, 1);
    transporters_.Append(t1, 2);
    catalog_ = {{"Suppliers", &suppliers_.schema()},
                {"Transporters", &transporters_.schema()}};
    tables_ = {{"Suppliers", &suppliers_},
               {"Transporters", &transporters_}};
  }

  static constexpr const char* kQ1 =
      "SELECT R.id, T.id, "
      "       (R.uPrice + T.uShipCost) AS tCost, "
      "       (2 * R.manTime + T.shipTime) AS delay "
      "FROM Suppliers R, Transporters T "
      "WHERE R.country = T.country "
      "PREFERRING LOWEST(tCost) AND LOWEST(delay)";

  Relation suppliers_;
  Relation transporters_;
  std::map<std::string, const Schema*> catalog_;
  std::map<std::string, const Relation*> tables_;
};

TEST_F(ParserTest, ParsesQ1Structure) {
  auto parsed = ParseSmjQuery(kQ1, catalog_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->r_table, "Suppliers");
  EXPECT_EQ(parsed->r_alias, "R");
  EXPECT_EQ(parsed->t_table, "Transporters");
  EXPECT_EQ(parsed->t_alias, "T");
  EXPECT_EQ(parsed->r_join_attr, "country");
  EXPECT_TRUE(parsed->select_r_id);
  EXPECT_TRUE(parsed->select_t_id);
  ASSERT_EQ(parsed->output_names.size(), 2u);
  EXPECT_EQ(parsed->output_names[0], "tCost");
  EXPECT_EQ(parsed->output_names[1], "delay");
  EXPECT_EQ(parsed->map.output_dimensions(), 2);
  EXPECT_TRUE(parsed->pref.IsAllLowest());
}

TEST_F(ParserTest, Q1ExpressionsEvaluateCorrectly) {
  auto parsed = ParseSmjQuery(kQ1, catalog_);
  ASSERT_TRUE(parsed.ok());
  const double r[] = {10.0, 3.0};  // uPrice, manTime
  const double t[] = {4.0, 7.0};   // uShipCost, shipTime
  double out[2];
  parsed->map.Eval(r, t, out);
  EXPECT_EQ(out[0], 14.0);  // 10 + 4
  EXPECT_EQ(out[1], 13.0);  // 2*3 + 7
}

TEST_F(ParserTest, BindAndRunEndToEnd) {
  auto query = CompileSmjQuery(kQ1, tables_);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  auto results = RunProgXe(*query, ProgXeOptions());
  ASSERT_TRUE(results.ok());
  // Join key 1 matches suppliers {0,1} x transporter {0}:
  //   (10+4, 2*3+7) = (14, 13) and (20+4, 2*1+7) = (24, 9): incomparable.
  EXPECT_EQ(results->size(), 2u);
}

TEST_F(ParserTest, HighestAndMixedDirections) {
  auto parsed = ParseSmjQuery(
      "SELECT (R.uPrice + T.uShipCost) AS cost, "
      "       (R.manTime + T.shipTime) AS speed "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING HIGHEST(speed) AND LOWEST(cost)",
      catalog_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Directions follow select-list order, not PREFERRING order.
  EXPECT_EQ(parsed->pref.direction(0), Direction::kLowest);   // cost
  EXPECT_EQ(parsed->pref.direction(1), Direction::kHighest);  // speed
}

TEST_F(ParserTest, TransformFunctions) {
  auto parsed = ParseSmjQuery(
      "SELECT LOG1P(R.uPrice + T.uShipCost) AS logCost "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING LOWEST(logCost)",
      catalog_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->map.func(0).transform(), Transform::kLog1p);
  const double r[] = {10.0, 3.0};
  const double t[] = {4.0, 7.0};
  double out[1];
  parsed->map.Eval(r, t, out);
  EXPECT_DOUBLE_EQ(out[0], std::log1p(14.0));
}

TEST_F(ParserTest, ConstantsAndMinus) {
  auto parsed = ParseSmjQuery(
      "SELECT (R.uPrice - T.uShipCost + 100) AS margin "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING HIGHEST(margin)",
      catalog_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const double r[] = {10.0, 3.0};
  const double t[] = {4.0, 7.0};
  double out[1];
  parsed->map.Eval(r, t, out);
  EXPECT_EQ(out[0], 106.0);
}

TEST_F(ParserTest, CaseInsensitiveKeywords) {
  auto parsed = ParseSmjQuery(
      "select (R.uPrice + T.uShipCost) as c "
      "from Suppliers R, Transporters T where R.country = T.country "
      "preferring lowest(c)",
      catalog_);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

TEST_F(ParserTest, ErrorUnknownTable) {
  auto parsed = ParseSmjQuery(
      "SELECT (X.a + T.uShipCost) AS c FROM Nope X, Transporters T "
      "WHERE X.country = T.country PREFERRING LOWEST(c)",
      catalog_);
  EXPECT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsNotFound());
}

TEST_F(ParserTest, ErrorUnknownAttribute) {
  auto parsed = ParseSmjQuery(
      "SELECT (R.bogus + T.uShipCost) AS c "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING LOWEST(c)",
      catalog_);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(ParserTest, ErrorUnknownAlias) {
  auto parsed = ParseSmjQuery(
      "SELECT (Z.uPrice + T.uShipCost) AS c "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING LOWEST(c)",
      catalog_);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(ParserTest, ErrorPreferenceMismatch) {
  auto parsed = ParseSmjQuery(
      "SELECT (R.uPrice + T.uShipCost) AS c, (R.manTime) AS m "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING LOWEST(c)",
      catalog_);
  EXPECT_FALSE(parsed.ok());

  parsed = ParseSmjQuery(
      "SELECT (R.uPrice + T.uShipCost) AS c "
      "FROM Suppliers R, Transporters T WHERE R.country = T.country "
      "PREFERRING LOWEST(nope)",
      catalog_);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(ParserTest, ErrorMissingKeywords) {
  EXPECT_FALSE(ParseSmjQuery("SELECT x", catalog_).ok());
  EXPECT_FALSE(ParseSmjQuery("", catalog_).ok());
  EXPECT_FALSE(ParseSmjQuery(
                   "SELECT (R.uPrice + T.uShipCost) AS c "
                   "FROM Suppliers R, Transporters T "
                   "PREFERRING LOWEST(c)",  // no WHERE
                   catalog_)
                   .ok());
}

TEST_F(ParserTest, ErrorJoinOnNonJoinColumn) {
  auto query = CompileSmjQuery(
      "SELECT (R.uPrice + T.uShipCost) AS c "
      "FROM Suppliers R, Transporters T WHERE R.uPrice = T.uShipCost "
      "PREFERRING LOWEST(c)",
      tables_);
  EXPECT_FALSE(query.ok());
  EXPECT_TRUE(query.status().IsInvalidArgument());
}

TEST_F(ParserTest, ParsedQueryMatchesHandBuiltOnGeneratedData) {
  GeneratorOptions gen;
  gen.cardinality = 400;
  gen.num_attributes = 2;
  gen.join_selectivity = 0.05;
  gen.seed = 1;
  Relation r = GenerateRelation(gen).MoveValue();
  gen.seed = 2;
  Relation t = GenerateRelation(gen).MoveValue();
  std::map<std::string, const Relation*> tables{{"A", &r}, {"B", &t}};

  auto query = CompileSmjQuery(
      "SELECT (s.a0 + u.a0) AS x0, (s.a1 + u.a1) AS x1 "
      "FROM A s, B u WHERE s.jk = u.jk "
      "PREFERRING LOWEST(x0) AND LOWEST(x1)",
      tables);
  ASSERT_TRUE(query.ok()) << query.status().ToString();

  SkyMapJoinQuery hand;
  hand.r = &r;
  hand.t = &t;
  hand.map = MapSpec::PairwiseSum(2);
  hand.pref = Preference::AllLowest(2);

  auto parsed_results = RunProgXe(*query, ProgXeOptions());
  auto hand_results = RunProgXe(hand, ProgXeOptions());
  ASSERT_TRUE(parsed_results.ok());
  ASSERT_TRUE(hand_results.ok());
  EXPECT_EQ(parsed_results->size(), hand_results->size());
}

}  // namespace
}  // namespace progxe
