// PrepareCache tests: the cross-query prepared-state cache must be
// semantically invisible. A cache hit skips the prepare phase but the
// session it feeds must deliver the exact cold-run emission sequence with
// bit-identical ProgXeStats; the fingerprint must separate every
// prepare-affecting input (sources, mapping, preference, prepare options)
// while ignoring consumption-side options; the LRU budget must be honored
// on both axes; and concurrent submitters must converge on one shared
// entry. Refinement seeding rides the same contract: a seeded run may only
// change cost counters, never the result set.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "equivalence_common.h"
#include "mapping/canonical.h"
#include "progxe/prepare_cache.h"
#include "progxe/session.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

using IdSeq = std::vector<std::pair<RowId, RowId>>;

/// Drains a session to completion, recording the emission sequence (and
/// optionally the full tuples, for seed construction).
IdSeq Drain(const Config& cfg, const ProgXeOptions& options,
            ProgXeStats* stats, std::vector<ResultTuple>* tuples = nullptr) {
  IdSeq seq;
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  std::vector<ResultTuple> batch;
  while (!(*session)->Finished()) {
    if ((*session)->NextBatch(0, &batch) == 0) break;
    for (ResultTuple& res : batch) {
      seq.emplace_back(res.r_id, res.t_id);
      if (tuples != nullptr) tuples->push_back(std::move(res));
    }
  }
  if (stats != nullptr) *stats = (*session)->stats();
  return seq;
}

IdSeq Sorted(IdSeq seq) {
  std::sort(seq.begin(), seq.end());
  return seq;
}

/// Rebuilds `spec` with the first term's weight nudged: same shape, same
/// sources — a different canonical mapping that must miss the cache.
MapSpec PerturbFirstWeight(const MapSpec& spec) {
  std::vector<MapFunc> funcs;
  for (int j = 0; j < spec.output_dimensions(); ++j) {
    const MapFunc& f = spec.func(j);
    std::vector<MapTerm> terms = f.terms();
    if (j == 0 && !terms.empty()) terms[0].weight += 0.5;
    funcs.push_back(MapFunc(terms, f.constant(), f.transform()));
  }
  return MapSpec(std::move(funcs));
}

/// Folds a parent run's output tuples under the *child's* mapper — the
/// same construction the scheduler uses for SubmitOptions::seed_from_parent.
std::shared_ptr<const RefinementSeed> SeedFrom(
    const Config& child, const std::vector<ResultTuple>& parent_results) {
  CanonicalMapper mapper(child.map, child.pref);
  auto seed = std::make_shared<RefinementSeed>();
  seed->k = child.map.output_dimensions();
  for (const ResultTuple& res : parent_results) {
    for (int j = 0; j < seed->k; ++j) {
      seed->canonical.push_back(mapper.Canonicalize(j, res.values[j]));
    }
  }
  return seed;
}

// Every prepare-affecting input moves the fingerprint; every
// consumption-side option leaves it alone. In particular the ISSUE case:
// the same sources under a different mapping MUST miss.
TEST(PrepareCacheFingerprint, SeparatesPrepareInputsIgnoresConsumption) {
  Rng rng(0x9ca0);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;

  const std::string fp = PrepareCache::Fingerprint(cfg.query(), options);
  // Deterministic: recomputing yields the same key.
  EXPECT_EQ(fp, PrepareCache::Fingerprint(cfg.query(), options));

  // Content-addressed, not identity-addressed: distinct Relation objects
  // with equal contents hash equal.
  Config copy;
  copy.r = cfg.r;
  copy.t = cfg.t;
  copy.map = cfg.map;
  copy.pref = cfg.pref;
  EXPECT_EQ(fp, PrepareCache::Fingerprint(copy.query(), options));

  // Same sources, different mapping: must be a different key.
  Config remapped = copy;
  remapped.map = PerturbFirstWeight(cfg.map);
  EXPECT_NE(fp, PrepareCache::Fingerprint(remapped.query(), options));

  // Preference directions fold into the canonical mapper's signs, which
  // the contribution tables bake in — flipping one must move the key.
  Config flipped = copy;
  std::vector<Direction> dirs = cfg.pref.directions();
  dirs[0] = dirs[0] == Direction::kLowest ? Direction::kHighest
                                          : Direction::kLowest;
  flipped.pref = Preference(std::move(dirs));
  EXPECT_NE(fp, PrepareCache::Fingerprint(flipped.query(), options));

  // Prepare-affecting options move the key...
  ProgXeOptions pushed = options;
  pushed.push_through = !options.push_through;
  EXPECT_NE(fp, PrepareCache::Fingerprint(cfg.query(), pushed));

  // ...while consumption-side options (ordering, threads, budgets, seed)
  // never change what the prepare phase builds, so they share the entry.
  ProgXeOptions consumer = options;
  consumer.seed = 0xbeef;
  consumer.ordering = OrderingMode::kRandom;
  consumer.num_threads = 4;
  consumer.max_results = 7;
  EXPECT_EQ(fp, PrepareCache::Fingerprint(cfg.query(), consumer));
}

// LRU behavior under the entry budget and the byte budget, end to end
// through ProgXeSession::Open: hits bump recency, evictions drop the
// least-recently-used entry, and an entry larger than the whole byte
// budget is served back uncached without poisoning the cache.
TEST(PrepareCache, HitMissEvictionUnderBudgets) {
  Rng rng(0x9ca1);
  const Config a = MakeConfig(&rng, false, false);
  const Config b = MakeConfig(&rng, false, true);
  const Config c = MakeConfig(&rng, true, false);

  auto open = [](const Config& cfg, std::shared_ptr<PrepareCache> cache) {
    ProgXeOptions options;
    options.seed = 0xfeed;
    options.prepare_cache = std::move(cache);
    return Sorted(Drain(cfg, options, nullptr));
  };

  // Entry budget: capacity 2, three distinct queries.
  auto cache = std::make_shared<PrepareCache>(/*max_entries=*/2,
                                              /*max_bytes=*/0);
  const IdSeq ref_a = open(a, cache);  // miss -> [A]
  open(b, cache);                      // miss -> [B, A]
  EXPECT_EQ(cache->stats().misses, 2u);
  EXPECT_EQ(cache->stats().entries, 2u);

  open(a, cache);  // hit, bumps recency -> [A, B]
  EXPECT_EQ(cache->stats().hits, 1u);

  open(c, cache);  // miss, evicts LRU = B -> [C, A]
  EXPECT_EQ(cache->stats().misses, 3u);
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->stats().entries, 2u);

  // A survived the eviction (it was bumped), B did not.
  EXPECT_EQ(open(a, cache), ref_a);  // hit
  EXPECT_EQ(cache->stats().hits, 2u);
  open(b, cache);  // miss again: B was the one evicted
  EXPECT_EQ(cache->stats().misses, 4u);
  EXPECT_EQ(cache->stats().evictions, 2u);

  // Byte budget: measure the two entries, then size the cache so each fits
  // alone but not both — the second insert must evict the first.
  auto measure = std::make_shared<PrepareCache>(0, 0);
  open(a, measure);
  const size_t bytes_a = measure->stats().bytes;
  open(b, measure);
  const size_t bytes_ab = measure->stats().bytes;
  ASSERT_GT(bytes_a, 0u);
  ASSERT_GT(bytes_ab, bytes_a);

  auto tight = std::make_shared<PrepareCache>(0, bytes_ab - 1);
  open(a, tight);
  EXPECT_EQ(tight->stats().entries, 1u);
  open(b, tight);  // over budget together: A is evicted
  EXPECT_EQ(tight->stats().entries, 1u);
  EXPECT_EQ(tight->stats().evictions, 1u);
  EXPECT_LE(tight->stats().bytes, bytes_ab - 1);
  open(b, tight);  // B is the survivor
  EXPECT_EQ(tight->stats().hits, 1u);

  // An entry larger than the whole byte budget is served back uncached:
  // the query still runs (and returns the right set), the cache stays
  // empty instead of thrashing.
  auto tiny = std::make_shared<PrepareCache>(0, 1);
  EXPECT_EQ(open(a, tiny), ref_a);
  EXPECT_EQ(tiny->stats().entries, 0u);
  EXPECT_EQ(tiny->stats().bytes, 0u);
  EXPECT_EQ(tiny->stats().misses, 1u);
}

// Concurrent submitters of the same query converge on one shared entry —
// both through the insert race (first writer wins, everyone else keeps an
// equivalent instance) and through the steady state (all hits). Run under
// TSan in CI; the assertions here are the functional half of the check.
TEST(PrepareCache, ConcurrentSessionsConvergeOnOneEntry) {
  Rng rng(0x9ca2);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions cold;
  cold.seed = 0xfeed;
  const IdSeq reference = Sorted(Drain(cfg, cold, nullptr));
  constexpr int kThreads = 8;

  // Phase 1: cold insert race. All threads miss-or-hit but the cache ends
  // with exactly one entry and every thread served the exact skyline.
  {
    auto cache = std::make_shared<PrepareCache>(0, 0);
    std::vector<IdSeq> served(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        ProgXeOptions options;
        options.seed = 0xfeed;
        options.prepare_cache = cache;
        served[static_cast<size_t>(i)] = Sorted(Drain(cfg, options, nullptr));
      });
    }
    for (std::thread& th : threads) th.join();
    for (const IdSeq& seq : served) EXPECT_EQ(seq, reference);
    const PrepareCache::Stats stats = cache->stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GE(stats.misses, 1u);
    EXPECT_EQ(stats.hits + stats.misses, static_cast<uint64_t>(kThreads));
  }

  // Phase 2: prepopulated steady state. Every concurrent open is a hit on
  // the one shared immutable entry.
  {
    auto cache = std::make_shared<PrepareCache>(0, 0);
    ProgXeOptions options;
    options.seed = 0xfeed;
    options.prepare_cache = cache;
    Drain(cfg, options, nullptr);  // populate
    std::vector<IdSeq> served(kThreads);
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back([&, i] {
        ProgXeOptions opts;
        opts.seed = 0xfeed;
        opts.prepare_cache = cache;
        served[static_cast<size_t>(i)] = Sorted(Drain(cfg, opts, nullptr));
      });
    }
    for (std::thread& th : threads) th.join();
    for (const IdSeq& seq : served) EXPECT_EQ(seq, reference);
    const PrepareCache::Stats stats = cache->stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads));
  }
}

// The semantic guard, swept across the same 12-config matrix as the
// session-equivalence suite: a cache-hit run must reproduce the cold run's
// emission sequence and every ProgXeStats counter bit for bit.
class PrepareCacheEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrepareCacheEquivalenceSweep, CachedHitMatchesColdRun) {
  const int param = GetParam();
  Rng rng(0x9ca9 + static_cast<uint64_t>(param));
  const Config cfg = MakeConfig(&rng, param % 5 == 0, param % 4 == 0);

  ProgXeOptions options;
  options.seed = 0xfeed;
  if (param % 3 == 1) options.num_threads = 2 + (param % 2) * 6;
  if (param % 3 == 2) options.max_results = 1 + static_cast<size_t>(param);

  ProgXeStats cold_stats;
  const IdSeq cold = Drain(cfg, options, &cold_stats);

  auto cache = std::make_shared<PrepareCache>(0, 0);
  ProgXeOptions cached = options;
  cached.prepare_cache = cache;

  // The populating miss must already be equivalent (it builds the same
  // inputs, only shared), then the hit skips the prepare phase entirely.
  ProgXeStats miss_stats;
  EXPECT_EQ(Drain(cfg, cached, &miss_stats), cold) << "param=" << param;
  ExpectSameStats(cold_stats, miss_stats, "populating miss vs cold");

  ProgXeStats hit_stats;
  EXPECT_EQ(Drain(cfg, cached, &hit_stats), cold) << "param=" << param;
  ExpectSameStats(cold_stats, hit_stats, "cache hit vs cold");

  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 1u);
}

INSTANTIATE_TEST_SUITE_P(Matrix, PrepareCacheEquivalenceSweep,
                         ::testing::Range(0, 12));

// Refinement seeding is cost-only: a run seeded from a finished parent's
// frontier — even a parent with a *flipped* preference, whose outputs are
// still genuine output points of the same (sources, mapping) — delivers
// exactly the unseeded result set. And under the same seeding config, a
// warm (cache-hit) run stays bit-identical to its cold counterpart.
TEST(PrepareCache, SeededRunMatchesUnseededSet) {
  for (uint64_t salt : {uint64_t{0}, uint64_t{3}}) {
    Rng rng(0x9cb0 + salt);
    const Config cfg = MakeConfig(&rng, salt == 3, salt == 0);
    ProgXeOptions options;
    options.seed = 0xfeed;

    std::vector<ResultTuple> parent_results;
    const IdSeq unseeded = Sorted(Drain(cfg, options, nullptr,
                                        &parent_results));

    // Self-refinement: seed the query from its own accepted frontier.
    ProgXeOptions seeded = options;
    seeded.refinement_seed = SeedFrom(cfg, parent_results);
    ProgXeStats seeded_cold_stats;
    const IdSeq seeded_cold = Drain(cfg, seeded, &seeded_cold_stats);
    EXPECT_EQ(Sorted(seeded_cold), unseeded) << "salt=" << salt;

    // Pref-flip parent: its skyline members are genuine output points of
    // the same join + mapping, so they are sound discard witnesses for the
    // child once folded under the child's mapper.
    Config parent = cfg;
    std::vector<Direction> dirs = cfg.pref.directions();
    dirs[0] = dirs[0] == Direction::kLowest ? Direction::kHighest
                                            : Direction::kLowest;
    parent.pref = Preference(std::move(dirs));
    std::vector<ResultTuple> flipped_results;
    Drain(parent, options, nullptr, &flipped_results);

    ProgXeOptions cross_seeded = options;
    cross_seeded.refinement_seed = SeedFrom(cfg, flipped_results);
    EXPECT_EQ(Sorted(Drain(cfg, cross_seeded, nullptr)), unseeded)
        << "salt=" << salt;

    // Warm == cold under identical seeding: sequence and stats —
    // including regions_discarded_seed — bit for bit.
    auto cache = std::make_shared<PrepareCache>(0, 0);
    ProgXeOptions warm = seeded;
    warm.prepare_cache = cache;
    Drain(cfg, warm, nullptr);  // populate
    ProgXeStats warm_stats;
    EXPECT_EQ(Drain(cfg, warm, &warm_stats), seeded_cold) << "salt=" << salt;
    ExpectSameStats(seeded_cold_stats, warm_stats, "seeded warm vs cold");
    EXPECT_EQ(cache->stats().hits, 1u);
  }
}

}  // namespace
}  // namespace progxe
