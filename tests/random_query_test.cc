// Randomized end-to-end property tests: for randomly generated SkyMapJoin
// queries — random term weights, constants, strictly-increasing transforms,
// mixed LOWEST/HIGHEST directions, random data distributions and join
// selectivities — every engine configuration must return exactly the
// brute-force skyline of the mapped join.
//
// This is the widest net in the suite: it exercises canonical sign folding,
// interval propagation through transforms, signature skipping, look-ahead
// pruning, ordering, ProgDetermine and push-through all at once, against an
// oracle that shares no code with the engine beyond MapSpec::Eval.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/jf_sl.h"
#include "baselines/saj.h"
#include "baselines/ssmj.h"
#include "common/rng.h"
#include "prefs/dominance.h"
#include "data/generator.h"
#include "progxe/executor.h"

namespace progxe {
namespace {

struct RandomQuery {
  Relation r{Schema::Anonymous(0)};
  Relation t{Schema::Anonymous(0)};
  MapSpec map;
  Preference pref;

  SkyMapJoinQuery query() const {
    SkyMapJoinQuery q;
    q.r = &r;
    q.t = &t;
    q.map = map;
    q.pref = pref;
    return q;
  }
};

RandomQuery MakeRandomQuery(Rng* rng) {
  RandomQuery q;
  const int src_dims = 2 + static_cast<int>(rng->NextBelow(3));  // 2..4
  const int out_dims = 2 + static_cast<int>(rng->NextBelow(2));  // 2..3
  const auto dist = static_cast<Distribution>(rng->NextBelow(3));
  const double sigma = 0.01 + rng->NextDouble() * 0.19;

  GeneratorOptions gen;
  gen.distribution = dist;
  gen.cardinality = 150 + rng->NextBelow(250);
  gen.num_attributes = src_dims;
  gen.join_selectivity = sigma;
  gen.seed = rng->Next();
  q.r = GenerateRelation(gen).MoveValue();
  gen.seed = rng->Next();
  gen.cardinality = 150 + rng->NextBelow(250);
  q.t = GenerateRelation(gen).MoveValue();

  std::vector<MapFunc> funcs;
  std::vector<Direction> dirs;
  for (int j = 0; j < out_dims; ++j) {
    std::vector<MapTerm> terms;
    const int nterms = 1 + static_cast<int>(rng->NextBelow(3));
    for (int i = 0; i < nterms; ++i) {
      terms.push_back(
          MapTerm{rng->Bernoulli(0.5) ? Side::kR : Side::kT,
                  static_cast<int>(rng->NextBelow(
                      static_cast<uint64_t>(src_dims))),
                  rng->Uniform(0.2, 3.0)});
    }
    // Ensure both sides appear somewhere in the spec overall; individual
    // functions may be one-sided (Passthrough-style).
    const auto transform = static_cast<Transform>(rng->NextBelow(4));
    funcs.push_back(MapFunc(terms, rng->Uniform(0.0, 10.0), transform));
    dirs.push_back(rng->Bernoulli(0.3) ? Direction::kHighest
                                       : Direction::kLowest);
  }
  q.map = MapSpec(std::move(funcs));
  q.pref = Preference(std::move(dirs));
  return q;
}

/// Oracle: materialize the join, evaluate the raw map, run the O(n^2)
/// preference-directed skyline.
std::vector<std::pair<RowId, RowId>> OracleSkyline(const RandomQuery& q) {
  const int k = q.map.output_dimensions();
  std::vector<std::vector<double>> vals;
  std::vector<std::pair<RowId, RowId>> ids;
  for (RowId a = 0; a < q.r.size(); ++a) {
    for (RowId b = 0; b < q.t.size(); ++b) {
      if (q.r.join_key(a) != q.t.join_key(b)) continue;
      std::vector<double> v(static_cast<size_t>(k));
      q.map.Eval(q.r.attrs(a), q.t.attrs(b), v.data());
      vals.push_back(std::move(v));
      ids.emplace_back(a, b);
    }
  }
  std::vector<std::pair<RowId, RowId>> skyline;
  for (size_t i = 0; i < ids.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < ids.size() && !dominated; ++j) {
      if (i == j) continue;
      dominated = Dominates(vals[j], vals[i], q.pref);
    }
    if (!dominated) skyline.push_back(ids[i]);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

std::vector<std::pair<RowId, RowId>> Sorted(
    const std::vector<ResultTuple>& results) {
  std::vector<std::pair<RowId, RowId>> ids;
  for (const auto& r : results) ids.emplace_back(r.r_id, r.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class RandomQuerySweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomQuerySweep, EveryEngineMatchesTheOracle) {
  Rng rng(0xabcd00 + static_cast<uint64_t>(GetParam()));
  RandomQuery q = MakeRandomQuery(&rng);
  const auto oracle = OracleSkyline(q);

  // ProgXe in several configurations.
  for (int cfg = 0; cfg < 4; ++cfg) {
    ProgXeOptions options;
    options.push_through = (cfg & 1) != 0;
    options.ordering = (cfg & 2) != 0 ? OrderingMode::kRandom
                                      : OrderingMode::kProgOrder;
    options.seed = rng.Next();
    if (cfg == 3) options.partitioning = PartitioningScheme::kKdTree;
    std::vector<ResultTuple> results;
    ProgXeExecutor exec(q.query(), options);
    ASSERT_TRUE(exec.Run([&](const ResultTuple& r) {
                      results.push_back(r);
                    }).ok());
    EXPECT_EQ(Sorted(results), oracle) << "ProgXe cfg=" << cfg;
  }

  // Baselines.
  {
    std::vector<ResultTuple> results;
    ASSERT_TRUE(RunJfSl(q.query(), [&](const ResultTuple& r) {
                  results.push_back(r);
                }).ok());
    EXPECT_EQ(Sorted(results), oracle) << "JF-SL";
  }
  {
    std::vector<ResultTuple> results;
    ASSERT_TRUE(RunJfSlPlus(q.query(), [&](const ResultTuple& r) {
                  results.push_back(r);
                }).ok());
    EXPECT_EQ(Sorted(results), oracle) << "JF-SL+";
  }
  {
    std::vector<ResultTuple> results;
    ASSERT_TRUE(RunSaj(q.query(), [&](const ResultTuple& r) {
                  results.push_back(r);
                }).ok());
    EXPECT_EQ(Sorted(results), oracle) << "SAJ";
  }
  {
    SsmjResult ssmj;
    ASSERT_TRUE(
        RunSsmj(q.query(), [](const ResultTuple&) {}, nullptr, &ssmj).ok());
    EXPECT_EQ(Sorted(ssmj.final_results), oracle) << "SSMJ";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomQuerySweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace progxe
