// Unit tests for the deterministic RNG substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"

namespace progxe {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.Uniform(-3.5, 12.25);
    EXPECT_GE(v, -3.5);
    EXPECT_LT(v, 12.25);
  }
}

TEST(Rng, NextBelowIsInRangeAndRoughlyUniform) {
  Rng rng(99);
  constexpr uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kSamples; ++i) {
    uint64_t v = rng.NextBelow(kBuckets);
    ASSERT_LT(v, kBuckets);
    ++counts[v];
  }
  // Each bucket should hold ~10% of samples; allow generous slack.
  for (int c : counts) {
    EXPECT_GT(c, kSamples / 10 - kSamples / 50);
    EXPECT_LT(c, kSamples / 10 + kSamples / 50);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments) {
  Rng rng(31337);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sum_sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, GaussianWithParams) {
  Rng rng(2);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(8);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int> a(50);
  std::iota(a.begin(), a.end(), 0);
  std::vector<int> b = a;
  Rng ra(4), rb(4);
  ra.Shuffle(&a);
  rb.Shuffle(&b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace progxe
