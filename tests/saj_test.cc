// Tests for the SAJ (Fagin-style) baseline: correctness and the threshold
// early-termination behaviour.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/jf_sl.h"
#include "baselines/saj.h"
#include "harness/workload.h"

namespace progxe {
namespace {

Workload MakeWorkload(Distribution dist, size_t n, int d, double sigma,
                      uint64_t seed = 5) {
  WorkloadParams params;
  params.distribution = dist;
  params.cardinality = n;
  params.dims = d;
  params.sigma = sigma;
  params.seed = seed;
  return Workload::Make(params).MoveValue();
}

std::vector<std::pair<RowId, RowId>> Ids(
    const std::vector<ResultTuple>& results) {
  std::vector<std::pair<RowId, RowId>> ids;
  for (const auto& r : results) ids.emplace_back(r.r_id, r.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

class SajDistributions : public ::testing::TestWithParam<Distribution> {};

TEST_P(SajDistributions, MatchesJfSl) {
  Workload w = MakeWorkload(GetParam(), 800, 3, 0.02);
  std::vector<ResultTuple> reference;
  ASSERT_TRUE(RunJfSl(w.query(), [&](const ResultTuple& r) {
                reference.push_back(r);
              }).ok());
  std::vector<ResultTuple> saj;
  SajStats stats;
  ASSERT_TRUE(RunSaj(w.query(), [&](const ResultTuple& r) {
                saj.push_back(r);
              }, &stats)
                  .ok());
  EXPECT_EQ(Ids(saj), Ids(reference));
  EXPECT_EQ(stats.base.results, saj.size());
  EXPECT_EQ(stats.base.batches, 1u);
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, SajDistributions,
                         ::testing::Values(Distribution::kIndependent,
                                           Distribution::kCorrelated,
                                           Distribution::kAntiCorrelated),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

TEST(Saj, EarlyTerminationOnCorrelatedData) {
  // Correlated data: a few low-sum tuples dominate everything, so the
  // threshold should fire long before the streams drain.
  Workload w = MakeWorkload(Distribution::kCorrelated, 5000, 3, 0.05);
  SajStats stats;
  ASSERT_TRUE(RunSaj(w.query(), [](const ResultTuple&) {}, &stats).ok());
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_LT(stats.rows_accessed_r + stats.rows_accessed_t, 10000u / 2);
}

TEST(Saj, ExhaustsStreamsOnAntiCorrelatedData) {
  // Anti-correlated data defeats sum-ordered thresholds: the skyline spans
  // the whole sum range, so SAJ reads (nearly) everything.
  Workload w = MakeWorkload(Distribution::kAntiCorrelated, 1000, 3, 0.05);
  SajStats stats;
  ASSERT_TRUE(RunSaj(w.query(), [](const ResultTuple&) {}, &stats).ok());
  EXPECT_GT(stats.rows_accessed_r + stats.rows_accessed_t, 1500u);
}

TEST(Saj, AccessCountsNeverExceedSources) {
  Workload w = MakeWorkload(Distribution::kIndependent, 400, 2, 0.1);
  SajStats stats;
  ASSERT_TRUE(RunSaj(w.query(), [](const ResultTuple&) {}, &stats).ok());
  EXPECT_LE(stats.rows_accessed_r, 400u);
  EXPECT_LE(stats.rows_accessed_t, 400u);
}

TEST(Saj, RejectsInvalidQueries) {
  SkyMapJoinQuery q;
  EXPECT_TRUE(RunSaj(q, [](const ResultTuple&) {}).IsInvalidArgument());
}

TEST(Saj, EmptyJoin) {
  Relation r(Schema::Anonymous(2));
  Relation t(Schema::Anonymous(2));
  const double row[] = {1.0, 2.0};
  r.Append(row, 1);
  t.Append(row, 2);
  SkyMapJoinQuery q;
  q.r = &r;
  q.t = &t;
  q.map = MapSpec::PairwiseSum(2);
  q.pref = Preference::AllLowest(2);
  SajStats stats;
  ASSERT_TRUE(RunSaj(q, [](const ResultTuple&) { FAIL(); }, &stats).ok());
  EXPECT_EQ(stats.base.results, 0u);
}

TEST(Saj, MixedPreferenceDirections) {
  Workload w = MakeWorkload(Distribution::kIndependent, 500, 2, 0.05);
  SkyMapJoinQuery q = w.query();
  q.pref = Preference({Direction::kLowest, Direction::kHighest});
  std::vector<ResultTuple> reference;
  ASSERT_TRUE(RunJfSl(q, [&](const ResultTuple& r) {
                reference.push_back(r);
              }).ok());
  std::vector<ResultTuple> saj;
  ASSERT_TRUE(RunSaj(q, [&](const ResultTuple& r) {
                saj.push_back(r);
              }).ok());
  EXPECT_EQ(Ids(saj), Ids(reference));
}

}  // namespace
}  // namespace progxe
