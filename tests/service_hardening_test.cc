// Serving-layer hardening tests: per-query deadlines (running and
// waiting-room expiry, exactly one OnDone), the SchedulerStats snapshot,
// scheduler-served sharded queries, and the enum name round-trips.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "equivalence_common.h"
#include "progxe/session.h"
#include "service/scheduler.h"

namespace progxe {
namespace {

using test::Config;
using test::MakeConfig;

using IdSet = std::vector<std::pair<RowId, RowId>>;

/// Minimal recording sink: delivered pairs, lifecycle, exactly-one OnDone.
class RecordingSink : public QuerySink {
 public:
  void OnBatch(const std::vector<ResultTuple>& batch) override {
    std::lock_guard<std::mutex> lock(mtx_);
    for (const ResultTuple& res : batch) seq_.emplace_back(res.r_id, res.t_id);
  }
  void OnDone(QueryState state, const Status& status,
              const ProgXeStats& stats) override {
    std::lock_guard<std::mutex> lock(mtx_);
    EXPECT_FALSE(done_) << "OnDone must fire exactly once";
    done_ = true;
    final_state_ = state;
    final_status_ = status;
    stats_ = stats;
  }
  bool done() const { return done_; }
  const IdSet& seq() const { return seq_; }
  QueryState final_state() const { return final_state_; }
  const Status& final_status() const { return final_status_; }
  const ProgXeStats& stats() const { return stats_; }

 private:
  std::mutex mtx_;
  IdSet seq_;
  bool done_ = false;
  QueryState final_state_ = QueryState::kQueued;
  Status final_status_;
  ProgXeStats stats_;
};

IdSet SoloReference(const Config& cfg, const ProgXeOptions& options,
                    ProgXeStats* stats) {
  IdSet seq;
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  while ((*session)->NextBatch(0, &batch) > 0) {
    for (const ResultTuple& res : batch) seq.emplace_back(res.r_id, res.t_id);
  }
  *stats = (*session)->stats();
  return seq;
}

// A running query whose deadline passes mid-stream must terminate with
// kDeadlineExceeded at a slice boundary: one OnDone, a strict prefix of the
// solo stream, handle state matching. The sink stalls past the deadline to
// make expiry deterministic.
TEST(Deadline, RunningQueryExpiresAtSliceBoundary) {
  Rng rng(0xdead11);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeStats solo_stats;
  const IdSet solo = SoloReference(cfg, ProgXeOptions(), &solo_stats);
  // The query must need more than one slice, or it could finish before the
  // stalled deadline check.
  ASSERT_GT(solo_stats.join_pairs_generated, 64u);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 64;
  QueryScheduler scheduler(sopts);

  struct StallingSink : RecordingSink {
    void OnBatch(const std::vector<ResultTuple>& batch) override {
      RecordingSink::OnBatch(batch);
      // Outlives the 100ms deadline; the next slice check must expire.
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  };
  StallingSink sink;
  SubmitOptions submit;
  submit.deadline = std::chrono::milliseconds(100);
  auto handle = scheduler.Submit(cfg.query(), ProgXeOptions(), &sink, submit);
  ASSERT_TRUE(handle.ok());
  handle->Wait();

  EXPECT_EQ(handle->state(), QueryState::kDeadlineExceeded);
  EXPECT_TRUE(sink.done());
  EXPECT_EQ(sink.final_state(), QueryState::kDeadlineExceeded);
  EXPECT_TRUE(sink.final_status().ok());
  EXPECT_LT(sink.seq().size(), solo.size())
      << "expired query delivered everything";
  for (size_t i = 0; i < sink.seq().size(); ++i) {
    EXPECT_EQ(sink.seq()[i], solo[i]) << "not a prefix at " << i;
  }

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.finished, 0u);
}

// A queued query whose deadline passes in the waiting room must expire
// without ever opening a stream — noticed by the timed worker wait, with no
// other scheduler activity to piggyback on.
TEST(Deadline, WaitingRoomExpiryNeedsNoActivity) {
  Rng rng(0xdead22);
  const Config cfg = MakeConfig(&rng, false, false);

  ServiceOptions sopts;
  sopts.num_workers = 2;  // one gets stuck in the holder, one sleeps idle
  sopts.max_concurrent = 1;
  QueryScheduler scheduler(sopts);

  struct BlockUntilReleased : QuerySink {
    std::mutex mtx;
    std::condition_variable cv;
    bool release = false;
    void OnBatch(const std::vector<ResultTuple>&) override {
      std::unique_lock<std::mutex> lock(mtx);
      cv.wait(lock, [&] { return release; });
    }
    void OnDone(QueryState, const Status&, const ProgXeStats&) override {}
  };
  BlockUntilReleased holder;
  RecordingSink expired;
  auto h1 = scheduler.Submit(cfg.query(), ProgXeOptions(), &holder);
  ASSERT_TRUE(h1.ok());
  SubmitOptions submit;
  submit.deadline = std::chrono::milliseconds(50);
  auto h2 = scheduler.Submit(cfg.query(), ProgXeOptions(), &expired, submit);
  ASSERT_TRUE(h2.ok());

  // The only admission slot stays blocked; h2 must still expire.
  h2->Wait();
  EXPECT_EQ(h2->state(), QueryState::kDeadlineExceeded);
  EXPECT_TRUE(expired.done());
  EXPECT_TRUE(expired.seq().empty());
  EXPECT_EQ(expired.stats().results_emitted, 0u);

  {
    std::lock_guard<std::mutex> lock(holder.mtx);
    holder.release = true;
    holder.cv.notify_all();
  }
  scheduler.Drain();
}

// ServiceOptions::default_deadline applies to submissions that carry no
// per-query override.
TEST(Deadline, DefaultDeadlineInherited) {
  Rng rng(0xdead33);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeStats solo_stats;
  SoloReference(cfg, ProgXeOptions(), &solo_stats);
  ASSERT_GT(solo_stats.join_pairs_generated, 64u);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 64;
  sopts.default_deadline = std::chrono::milliseconds(100);
  QueryScheduler scheduler(sopts);

  struct StallingSink : RecordingSink {
    void OnBatch(const std::vector<ResultTuple>& batch) override {
      RecordingSink::OnBatch(batch);
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  };
  StallingSink sink;
  auto handle = scheduler.Submit(cfg.query(), ProgXeOptions(), &sink);
  ASSERT_TRUE(handle.ok());
  handle->Wait();
  EXPECT_EQ(handle->state(), QueryState::kDeadlineExceeded);
}

// SchedulerStats: gauges drain to zero, outcome counters and served-work
// counters add up against ground truth.
TEST(SchedulerStatsTest, SnapshotMatchesServedWork) {
  Rng rng(0x57a75);
  constexpr int kQueries = 3;
  std::vector<Config> configs;
  for (int i = 0; i < kQueries; ++i) {
    configs.push_back(MakeConfig(&rng, false, false));
  }

  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.batch_budget = 128;
  QueryScheduler scheduler(sopts);
  EXPECT_EQ(scheduler.stats().submitted, 0u);

  std::vector<RecordingSink> sinks(kQueries);
  std::vector<QueryHandle> handles;
  for (int i = 0; i < kQueries; ++i) {
    auto handle =
        scheduler.Submit(configs[static_cast<size_t>(i)].query(),
                         ProgXeOptions(), &sinks[static_cast<size_t>(i)]);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  scheduler.Drain();

  uint64_t expected_results = 0;
  uint64_t expected_pairs = 0;
  for (int i = 0; i < kQueries; ++i) {
    const RecordingSink& sink = sinks[static_cast<size_t>(i)];
    EXPECT_EQ(sink.final_state(), QueryState::kFinished);
    expected_results += sink.seq().size();
    expected_pairs += sink.stats().join_pairs_generated;
  }

  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.finished, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(stats.cancelled, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.deadline_exceeded, 0u);
  EXPECT_EQ(stats.results, expected_results);
  EXPECT_EQ(stats.sliced_pairs, expected_pairs);
  EXPECT_GE(stats.slices, static_cast<uint64_t>(kQueries));
  EXPECT_GT(stats.batches, 0u);
  EXPECT_FALSE(stats.ToString().empty());

  // Slice-latency histogram: exactly one bucket entry per served slice,
  // and the quantile readout is a real bucket edge covering that mass.
  uint64_t bucketed = 0;
  for (uint64_t c : stats.slice_latency_us_log2) bucketed += c;
  EXPECT_EQ(bucketed, stats.slices);
  EXPECT_GT(stats.SliceLatencyQuantileUs(0.5), 0u);
  EXPECT_LE(stats.SliceLatencyQuantileUs(0.5),
            stats.SliceLatencyQuantileUs(1.0));
  // The histogram is exported through the human-readable snapshot too
  // (the server's bare `stats` command prints exactly this string).
  EXPECT_NE(stats.ToString().find("slice_lat_us_log2"), std::string::npos);
}

TEST(SchedulerStatsTest, SliceLatencyBucketEdges) {
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(0), 0u);
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(1), 1u);
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(2), 2u);
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(3), 2u);
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(4), 3u);
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(1023), 10u);
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(1024), 11u);
  // Overflow clamps into the last bucket instead of indexing past it.
  EXPECT_EQ(SchedulerStats::SliceLatencyBucket(UINT64_MAX),
            SchedulerStats::kSliceLatencyBuckets - 1);

  SchedulerStats stats;
  EXPECT_EQ(stats.SliceLatencyQuantileUs(0.5), 0u);  // nothing served yet
  stats.slice_latency_us_log2[3] = 9;
  stats.slice_latency_us_log2[7] = 1;
  EXPECT_EQ(stats.SliceLatencyQuantileUs(0.5), uint64_t{1} << 3);
  EXPECT_EQ(stats.SliceLatencyQuantileUs(0.99), uint64_t{1} << 7);
}

// A sharded query behind one QueryHandle: the scheduler-served stream must
// deliver exactly the unsharded result set (as a set — the merge order is
// scheduling-dependent) with additive counters, through the same Submit
// path as everything else.
TEST(ShardedServing, SchedulerServesShardedQueryAsOneHandle) {
  Rng rng(0x51a8d);
  const Config cfg = MakeConfig(&rng, true, true);
  ProgXeStats solo_stats;
  IdSet reference = SoloReference(cfg, ProgXeOptions(), &solo_stats);
  std::sort(reference.begin(), reference.end());

  for (int num_shards : {2, 4}) {
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.batch_budget = 64;
    QueryScheduler scheduler(sopts);
    RecordingSink sink;
    SubmitOptions submit;
    submit.shards.num_shards = num_shards;
    auto handle =
        scheduler.Submit(cfg.query(), ProgXeOptions(), &sink, submit);
    ASSERT_TRUE(handle.ok());
    handle->Wait();
    EXPECT_EQ(handle->state(), QueryState::kFinished);

    IdSet served = sink.seq();
    std::sort(served.begin(), served.end());
    EXPECT_EQ(served, reference) << "K=" << num_shards;
    // The aggregate counters are summed per-shard *engine* emissions: every
    // global result was emitted by its shard's local skyline, so the sum is
    // bounded below by the merged count (local skylines may hold more).
    EXPECT_GE(sink.stats().results_emitted, reference.size());
    EXPECT_GT(sink.stats().join_pairs_generated, 0u);
  }
}

// A sharded query that stops at the result cap finishes with *complete*
// coverage: every shard that reached the cap delivered everything it was
// asked for, so `stat`/progress must not report it as a partial answer.
// Regression guard for coverage() treating cap-finished shards as
// incomplete, and for progress snapshots going stale after the terminal
// transition.
TEST(ShardedServing, CapReachedQueryReportsCompleteCoverageAndProgress) {
  Rng rng(0x0c0ffee);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.max_results = 25;

  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.batch_budget = 64;
  QueryScheduler scheduler(sopts);
  RecordingSink sink;
  SubmitOptions submit;
  submit.shards.num_shards = 2;
  auto handle = scheduler.Submit(cfg.query(), options, &sink, submit);
  ASSERT_TRUE(handle.ok());
  handle->Wait();
  ASSERT_EQ(handle->state(), QueryState::kFinished);

  const ShardCoverage& cov = handle->coverage();
  EXPECT_EQ(cov.shards, 2);
  EXPECT_EQ(cov.completed, cov.shards)
      << "cap-finished shards must count as covered: " << cov.ToString();
  EXPECT_TRUE(cov.complete());
  EXPECT_TRUE(cov.abandoned_shards.empty());

  // The terminal progress snapshot must be frozen and self-consistent.
  const QueryProgress progress = handle->progress();
  EXPECT_EQ(progress.state, QueryState::kFinished);
  EXPECT_STREQ(progress.phase, "finished");
  EXPECT_EQ(progress.results_delivered, sink.seq().size());
  EXPECT_GT(progress.results_delivered, 0u);
  EXPECT_LE(progress.results_delivered, options.max_results);
  EXPECT_GT(progress.pairs_processed, 0u);
  EXPECT_GE(progress.ttfr_seconds, 0.0) << "TTFR unset on a delivering query";
  EXPECT_EQ(progress.shards, 2u);
  EXPECT_EQ(progress.shards_completed, 2u);
  EXPECT_EQ(progress.shards_abandoned, 0u);
  EXPECT_NE(progress.ToString().find("finished"), std::string::npos);
}

TEST(Names, FairnessPolicyRoundTrips) {
  for (FairnessPolicy policy :
       {FairnessPolicy::kRoundRobin, FairnessPolicy::kWeightedFair}) {
    FairnessPolicy parsed;
    ASSERT_TRUE(FairnessPolicyFromName(FairnessPolicyName(policy), &parsed));
    EXPECT_EQ(parsed, policy);
  }
  FairnessPolicy parsed;
  EXPECT_TRUE(FairnessPolicyFromName("rr", &parsed));
  EXPECT_EQ(parsed, FairnessPolicy::kRoundRobin);
  EXPECT_TRUE(FairnessPolicyFromName("wf", &parsed));
  EXPECT_EQ(parsed, FairnessPolicy::kWeightedFair);
  EXPECT_FALSE(FairnessPolicyFromName("fifo", &parsed));
  EXPECT_FALSE(FairnessPolicyFromName("", &parsed));
}

TEST(Names, QueryStateRoundTrips) {
  for (QueryState state :
       {QueryState::kQueued, QueryState::kRunning, QueryState::kFinished,
        QueryState::kCancelled, QueryState::kFailed,
        QueryState::kDeadlineExceeded, QueryState::kPartial}) {
    QueryState parsed;
    ASSERT_TRUE(QueryStateFromName(QueryStateName(state), &parsed))
        << QueryStateName(state);
    EXPECT_EQ(parsed, state);
  }
  QueryState parsed;
  EXPECT_FALSE(QueryStateFromName("exploded", &parsed));
  EXPECT_TRUE(IsTerminal(QueryState::kDeadlineExceeded));
  EXPECT_TRUE(IsTerminal(QueryState::kPartial));
}

/// A query whose shards fail every pump and retry with a long backoff: it
/// yields empty slices (runnable == 0 inside the budget window) without
/// ever finishing on its own — the scaffold for racing lifecycle events
/// against an in-flight retry.
SubmitOptions StuckRetrySubmit() {
  SubmitOptions submit;
  submit.shards.num_shards = 2;
  submit.shards.max_retries = 1000;
  submit.shards.retry_backoff = std::chrono::seconds(10);
  return submit;
}

ProgXeOptions AlwaysFaulting() {
  ProgXeOptions options;
  auto injector = FaultInjector::Parse("shard.next_batch:p=1", 0);
  EXPECT_TRUE(injector.ok());
  options.faults = injector.MoveValue();
  return options;
}

// Scheduler destruction while a query sits in retry backoff: the destructor
// must cancel it promptly (not wait out the 10s backoff window) and fire
// exactly one OnDone.
TEST(FaultLifecycle, DestructionMidRetryCancelsPromptly) {
  Rng rng(0xfa271);
  const Config cfg = MakeConfig(&rng, false, false);
  RecordingSink sink;
  const auto start = std::chrono::steady_clock::now();
  {
    ServiceOptions sopts;
    sopts.num_workers = 1;
    sopts.batch_budget = 64;  // budgeted slices: backoff becomes a yield
    QueryScheduler scheduler(sopts);
    auto handle =
        scheduler.Submit(cfg.query(), AlwaysFaulting(), &sink,
                         StuckRetrySubmit());
    ASSERT_TRUE(handle.ok());
    // Give the worker time to take the first (faulting) slice.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(sink.done());
  EXPECT_EQ(sink.final_state(), QueryState::kCancelled);
  EXPECT_LT(std::chrono::steady_clock::now() - start,
            std::chrono::seconds(5))
      << "teardown waited out the retry backoff";
}

// Cancel racing an in-flight retry: the cancel must win at the next slice
// boundary — one OnDone, state kCancelled, Drain returns.
TEST(FaultLifecycle, CancelRacesRetryWithoutWedging) {
  Rng rng(0xfa272);
  const Config cfg = MakeConfig(&rng, false, false);
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 64;
  QueryScheduler scheduler(sopts);
  RecordingSink sink;
  auto handle = scheduler.Submit(cfg.query(), AlwaysFaulting(), &sink,
                                 StuckRetrySubmit());
  ASSERT_TRUE(handle.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  handle->Cancel();
  handle->Wait();
  EXPECT_EQ(handle->state(), QueryState::kCancelled);
  EXPECT_TRUE(sink.done());
  EXPECT_EQ(sink.final_state(), QueryState::kCancelled);
  scheduler.Drain();
}

// A deadline expiring during retry backoff: the empty yield slices keep the
// deadline check running, so the query expires instead of sleeping through
// its own deadline inside the stream.
TEST(FaultLifecycle, DeadlineExpiresDuringBackoff) {
  Rng rng(0xfa273);
  const Config cfg = MakeConfig(&rng, false, false);
  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 64;
  QueryScheduler scheduler(sopts);
  RecordingSink sink;
  SubmitOptions submit = StuckRetrySubmit();
  submit.deadline = std::chrono::milliseconds(50);
  auto handle =
      scheduler.Submit(cfg.query(), AlwaysFaulting(), &sink, submit);
  ASSERT_TRUE(handle.ok());
  handle->Wait();
  EXPECT_EQ(handle->state(), QueryState::kDeadlineExceeded);
  EXPECT_TRUE(sink.done());
  EXPECT_EQ(sink.final_state(), QueryState::kDeadlineExceeded);
}

}  // namespace
}  // namespace progxe
