// QueryScheduler tests: every query served through the multi-query
// scheduler must deliver exactly the batches (concatenated, in order) and
// the final ProgXeStats of draining its session alone — for any mix of
// budgets, worker counts and fairness policies — plus admission control,
// cooperative cancellation and fairness smoke checks.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <utility>
#include <vector>

#include "equivalence_common.h"
#include "progxe/session.h"
#include "service/scheduler.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

using IdSeq = std::vector<std::pair<RowId, RowId>>;

/// Global submission-order event counter shared by one test's sinks, used
/// to assert cross-query interleaving (fairness) properties.
struct EventClock {
  std::atomic<uint64_t> next{0};
};

/// Records one query's delivered stream and lifecycle events.
class RecordingSink : public QuerySink {
 public:
  explicit RecordingSink(EventClock* clock = nullptr) : clock_(clock) {}

  void OnBatch(const std::vector<ResultTuple>& batch) override {
    std::lock_guard<std::mutex> lock(mtx_);
    EXPECT_FALSE(batch.empty());
    EXPECT_FALSE(done_);
    if (seq_.empty() && clock_ != nullptr) {
      first_batch_event_ = clock_->next.fetch_add(1);
    }
    for (const ResultTuple& res : batch) seq_.emplace_back(res.r_id, res.t_id);
    ++batches_;
  }

  void OnDone(QueryState state, const Status& status,
              const ProgXeStats& stats) override {
    std::lock_guard<std::mutex> lock(mtx_);
    EXPECT_FALSE(done_) << "OnDone must fire exactly once";
    done_ = true;
    final_state_ = state;
    final_status_ = status;
    stats_ = stats;
    if (clock_ != nullptr) done_event_ = clock_->next.fetch_add(1);
  }

  // Safe to read once the query's handle reports a terminal state.
  bool done() const { return done_; }
  const IdSeq& seq() const { return seq_; }
  size_t batches() const { return batches_; }
  QueryState final_state() const { return final_state_; }
  const Status& final_status() const { return final_status_; }
  const ProgXeStats& stats() const { return stats_; }
  uint64_t first_batch_event() const { return first_batch_event_; }
  uint64_t done_event() const { return done_event_; }

 private:
  std::mutex mtx_;
  EventClock* clock_;
  IdSeq seq_;
  size_t batches_ = 0;
  bool done_ = false;
  QueryState final_state_ = QueryState::kQueued;
  Status final_status_;
  ProgXeStats stats_;
  uint64_t first_batch_event_ = ~uint64_t{0};
  uint64_t done_event_ = ~uint64_t{0};
};

/// Drains a solo session to completion (reference stream + stats).
IdSeq SoloReference(const Config& cfg, const ProgXeOptions& options,
                    ProgXeStats* stats) {
  IdSeq seq;
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  while ((*session)->NextBatch(0, &batch) > 0) {
    for (const ResultTuple& res : batch) seq.emplace_back(res.r_id, res.t_id);
  }
  *stats = (*session)->stats();
  return seq;
}

struct SweepParam {
  int workers;
  size_t budget;  // join pairs per slice; 0 = unbudgeted
  FairnessPolicy policy;
};

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  for (int workers : {1, 4}) {
    for (size_t budget : {size_t{64}, size_t{4096}, size_t{0}}) {
      for (FairnessPolicy policy :
           {FairnessPolicy::kRoundRobin, FairnessPolicy::kWeightedFair}) {
        params.push_back(SweepParam{workers, budget, policy});
      }
    }
  }
  return params;
}

class SchedulerEquivalenceSweep
    : public ::testing::TestWithParam<SweepParam> {};

// The acceptance criterion: >= 8 concurrent queries, budgets in
// {small, default, unbounded}, workers in {1, 4}, both policies — each
// query's scheduler-served stream and counters must be bit-identical to
// its solo session.
TEST_P(SchedulerEquivalenceSweep, ServedEqualsSolo) {
  const SweepParam param = GetParam();
  constexpr int kQueries = 8;

  Rng rng(0xc0ffee);
  std::vector<Config> configs;
  std::vector<ProgXeOptions> options;
  for (int i = 0; i < kQueries; ++i) {
    configs.push_back(MakeConfig(&rng, i % 5 == 0, i % 4 == 0));
    ProgXeOptions opt;
    opt.seed = 0xfeed + static_cast<uint64_t>(i);
    // Exercise a per-session worker pool under the scheduler pool, and one
    // early-terminated query.
    if (i % 4 == 2) opt.num_threads = 2;
    if (i == 5) opt.max_results = 7;
    options.push_back(opt);
  }

  std::vector<IdSeq> reference(kQueries);
  std::vector<ProgXeStats> reference_stats(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    reference[static_cast<size_t>(i)] =
        SoloReference(configs[static_cast<size_t>(i)],
                      options[static_cast<size_t>(i)],
                      &reference_stats[static_cast<size_t>(i)]);
  }

  ServiceOptions sopts;
  sopts.num_workers = param.workers;
  sopts.batch_budget = param.budget;
  sopts.policy = param.policy;
  sopts.max_concurrent = 0;  // all queries in flight at once
  QueryScheduler scheduler(sopts);

  std::vector<RecordingSink> sinks(kQueries);
  std::vector<QueryHandle> handles;
  for (int i = 0; i < kQueries; ++i) {
    auto handle = scheduler.Submit(
        configs[static_cast<size_t>(i)].query(),
        options[static_cast<size_t>(i)], &sinks[static_cast<size_t>(i)],
        /*weight=*/1.0 + i % 3);
    ASSERT_TRUE(handle.ok());
    handles.push_back(*handle);
  }
  scheduler.Drain();

  for (int i = 0; i < kQueries; ++i) {
    const RecordingSink& sink = sinks[static_cast<size_t>(i)];
    ASSERT_TRUE(sink.done()) << "query " << i;
    EXPECT_EQ(sink.final_state(), QueryState::kFinished) << "query " << i;
    EXPECT_EQ(handles[static_cast<size_t>(i)].state(), QueryState::kFinished);
    EXPECT_EQ(sink.seq(), reference[static_cast<size_t>(i)])
        << "query " << i << " stream diverged";
    ExpectSameStats(reference_stats[static_cast<size_t>(i)], sink.stats(),
                    "scheduler vs solo");
    ExpectSameStats(reference_stats[static_cast<size_t>(i)],
                    handles[static_cast<size_t>(i)].stats(),
                    "handle stats vs solo");
  }
}

INSTANTIATE_TEST_SUITE_P(Matrix, SchedulerEquivalenceSweep,
                         ::testing::ValuesIn(SweepParams()));

// With budget slicing on and one worker, a light query submitted behind a
// heavy one must deliver its first batch before the heavy query completes.
TEST(Scheduler, BudgetSlicingPreventsStarvation) {
  Rng rng(0xfa12);
  // Heavy: high-sigma config joins many pairs per region.
  const Config heavy = MakeConfig(&rng, false, true);
  const Config light = MakeConfig(&rng, false, false);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 32;  // small slices force interleaving
  QueryScheduler scheduler(sopts);

  // Park the lone worker inside a gate query's first batch until both real
  // queries are submitted; otherwise the worker could drive the heavy query
  // to completion inside the submission gap.
  struct GateSink : QuerySink {
    std::mutex mtx;
    std::condition_variable cv;
    bool entered = false;
    bool release = false;
    void OnBatch(const std::vector<ResultTuple>&) override {
      std::unique_lock<std::mutex> lock(mtx);
      entered = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    void OnDone(QueryState, const Status&, const ProgXeStats&) override {}
  };
  GateSink gate;
  Rng gate_rng(0x6a7e);
  const Config gate_cfg = MakeConfig(&gate_rng, false, false);
  auto g = scheduler.Submit(gate_cfg.query(), ProgXeOptions(), &gate);
  ASSERT_TRUE(g.ok());
  {
    std::unique_lock<std::mutex> lock(gate.mtx);
    gate.cv.wait(lock, [&] { return gate.entered; });
  }

  EventClock clock;
  RecordingSink heavy_sink(&clock);
  RecordingSink light_sink(&clock);
  auto h = scheduler.Submit(heavy.query(), ProgXeOptions(), &heavy_sink);
  auto l = scheduler.Submit(light.query(), ProgXeOptions(), &light_sink);
  ASSERT_TRUE(h.ok() && l.ok());
  {
    std::lock_guard<std::mutex> lock(gate.mtx);
    gate.release = true;
    gate.cv.notify_all();
  }
  scheduler.Drain();

  ASSERT_FALSE(light_sink.seq().empty());
  ASSERT_FALSE(heavy_sink.seq().empty());
  // The serving-layer criterion: the late light query's first batch must
  // not wait for the earlier heavy query's full completion.
  EXPECT_LT(light_sink.first_batch_event(), heavy_sink.done_event())
      << "light query's first batch waited for the heavy query to finish";
}

TEST(Scheduler, AdmissionControlBoundsQueueAndConcurrency) {
  Rng rng(0xad31);
  std::vector<Config> configs;
  for (int i = 0; i < 3; ++i) configs.push_back(MakeConfig(&rng, false, false));

  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 64;
  sopts.max_concurrent = 1;
  sopts.max_queue = 1;
  QueryScheduler scheduler(sopts);

  // Stall the only worker inside the first query's first OnBatch so the
  // waiting room stays occupied long enough to observe the bound.
  struct BlockingSink : QuerySink {
    std::mutex mtx;
    std::condition_variable cv;
    bool release = false;
    bool blocked = false;
    RecordingSink inner;
    void OnBatch(const std::vector<ResultTuple>& batch) override {
      inner.OnBatch(batch);
      std::unique_lock<std::mutex> lock(mtx);
      blocked = true;
      cv.notify_all();
      cv.wait(lock, [&] { return release; });
    }
    void OnDone(QueryState state, const Status& status,
                const ProgXeStats& stats) override {
      inner.OnDone(state, status, stats);
    }
  };

  BlockingSink first;
  RecordingSink second;
  RecordingSink third;
  auto h1 = scheduler.Submit(configs[0].query(), ProgXeOptions(), &first);
  ASSERT_TRUE(h1.ok());
  {
    std::unique_lock<std::mutex> lock(first.mtx);
    first.cv.wait(lock, [&] { return first.blocked; });
  }
  // Worker is blocked in query 1's sink; slot and queue fill up.
  auto h2 = scheduler.Submit(configs[1].query(), ProgXeOptions(), &second);
  ASSERT_TRUE(h2.ok());
  auto h3 = scheduler.Submit(configs[2].query(), ProgXeOptions(), &third);
  ASSERT_FALSE(h3.ok()) << "queue bound not enforced";
  EXPECT_TRUE(h3.status().IsOutOfRange());

  {
    std::lock_guard<std::mutex> lock(first.mtx);
    first.release = true;
    first.cv.notify_all();
  }
  scheduler.Drain();
  EXPECT_EQ(first.inner.final_state(), QueryState::kFinished);
  EXPECT_EQ(second.final_state(), QueryState::kFinished);
}

TEST(Scheduler, CancelStopsAtSliceBoundaryWithPrefixStream) {
  Rng rng(0x7ab5);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeStats solo_stats;
  const IdSeq solo = SoloReference(cfg, ProgXeOptions(), &solo_stats);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.batch_budget = 16;
  QueryScheduler scheduler(sopts);

  // Cancel from inside the first delivery: everything delivered so far must
  // be a prefix of the solo stream, and OnDone must report kCancelled.
  struct CancelOnFirstBatch : QuerySink {
    RecordingSink inner;
    QueryHandle handle;
    void OnBatch(const std::vector<ResultTuple>& batch) override {
      inner.OnBatch(batch);
      handle.Cancel();
    }
    void OnDone(QueryState state, const Status& status,
                const ProgXeStats& stats) override {
      inner.OnDone(state, status, stats);
    }
  };
  CancelOnFirstBatch sink;
  auto handle = scheduler.Submit(cfg.query(), ProgXeOptions(), &sink);
  ASSERT_TRUE(handle.ok());
  sink.handle = *handle;
  handle->Wait();

  EXPECT_EQ(handle->state(), QueryState::kCancelled);
  EXPECT_EQ(sink.inner.final_state(), QueryState::kCancelled);
  ASSERT_LE(sink.inner.seq().size(), solo.size());
  EXPECT_LT(sink.inner.seq().size(), solo.size())
      << "cancel was requested mid-stream but everything got delivered";
  for (size_t i = 0; i < sink.inner.seq().size(); ++i) {
    EXPECT_EQ(sink.inner.seq()[i], solo[i]) << "not a prefix at " << i;
  }
}

TEST(Scheduler, CancelWhileQueuedNeverOpensSession) {
  Rng rng(0x99);
  const Config cfg = MakeConfig(&rng, false, false);

  ServiceOptions sopts;
  sopts.num_workers = 2;  // one stays free to reap while the slot is held
  sopts.max_concurrent = 1;
  QueryScheduler scheduler(sopts);

  // Occupy the only slot with a blocking query, cancel the queued one.
  struct BlockUntilReleased : QuerySink {
    std::mutex mtx;
    std::condition_variable cv;
    bool release = false;
    void OnBatch(const std::vector<ResultTuple>&) override {
      std::unique_lock<std::mutex> lock(mtx);
      cv.wait(lock, [&] { return release; });
    }
    void OnDone(QueryState, const Status&, const ProgXeStats&) override {}
  };
  BlockUntilReleased blocker;
  RecordingSink cancelled;
  auto h1 = scheduler.Submit(cfg.query(), ProgXeOptions(), &blocker);
  auto h2 = scheduler.Submit(cfg.query(), ProgXeOptions(), &cancelled);
  ASSERT_TRUE(h1.ok() && h2.ok());
  h2->Cancel();
  // The cancelled entry holds no slot, so its OnDone must not wait for
  // one: Wait() has to return while the only slot is still blocked.
  h2->Wait();
  {
    std::lock_guard<std::mutex> lock(blocker.mtx);
    blocker.release = true;
    blocker.cv.notify_all();
  }
  scheduler.Drain();
  EXPECT_EQ(h2->state(), QueryState::kCancelled);
  EXPECT_TRUE(cancelled.done());
  EXPECT_TRUE(cancelled.seq().empty());
  EXPECT_EQ(cancelled.stats().results_emitted, 0u);
}

TEST(Scheduler, InvalidQueryFailsThroughSink) {
  Config cfg;
  cfg.r = Relation(Schema::Anonymous(2));
  cfg.t = Relation(Schema::Anonymous(2));
  cfg.map = MapSpec::PairwiseSum(2);
  cfg.pref = Preference::AllLowest(3);  // dimensionality mismatch

  QueryScheduler scheduler(ServiceOptions{});
  RecordingSink sink;
  auto handle = scheduler.Submit(cfg.query(), ProgXeOptions(), &sink);
  ASSERT_TRUE(handle.ok());
  handle->Wait();
  EXPECT_EQ(handle->state(), QueryState::kFailed);
  EXPECT_TRUE(handle->status().IsInvalidArgument());
  EXPECT_EQ(sink.final_state(), QueryState::kFailed);
  EXPECT_TRUE(sink.seq().empty());
}

TEST(Scheduler, DestructionCancelsOutstandingQueries) {
  Rng rng(0xdead);
  const Config cfg = MakeConfig(&rng, false, true);
  RecordingSink sinks[4];
  std::vector<QueryHandle> handles;
  {
    ServiceOptions sopts;
    sopts.num_workers = 1;
    sopts.batch_budget = 8;
    sopts.max_concurrent = 1;
    QueryScheduler scheduler(sopts);
    for (RecordingSink& sink : sinks) {
      auto handle = scheduler.Submit(cfg.query(), ProgXeOptions(), &sink);
      ASSERT_TRUE(handle.ok());
      handles.push_back(*handle);
    }
    // Destructor fires with most queries queued or mid-flight.
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(sinks[i].done()) << "sink " << i << " never got OnDone";
    EXPECT_TRUE(IsTerminal(handles[static_cast<size_t>(i)].state()));
  }
}

TEST(Scheduler, SubmitRejectsNullSinkAndBadWeight) {
  Rng rng(0x11);
  const Config cfg = MakeConfig(&rng, false, false);
  QueryScheduler scheduler(ServiceOptions{});
  EXPECT_TRUE(scheduler.Submit(cfg.query(), ProgXeOptions(), nullptr)
                  .status()
                  .IsInvalidArgument());
  RecordingSink sink;
  EXPECT_TRUE(scheduler.Submit(cfg.query(), ProgXeOptions(), &sink, 0.0)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace progxe
