// ProgXeSession tests: incremental NextBatch consumption must deliver
// exactly the one-shot Run emission sequence with identical ProgXeStats
// counters, across randomized seeded configs, batch granularities, thread
// counts and early termination.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "equivalence_common.h"
#include "progxe/session.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

using IdSeq = std::vector<std::pair<RowId, RowId>>;

/// One-shot Run reference: emission sequence + stats.
IdSeq RunReference(const Config& cfg, const ProgXeOptions& options,
                   ProgXeStats* stats) {
  IdSeq seq;
  ProgXeExecutor exec(cfg.query(), options);
  EXPECT_TRUE(exec.Run([&](const ResultTuple& res) {
                    seq.emplace_back(res.r_id, res.t_id);
                  })
                  .ok());
  *stats = exec.stats();
  return seq;
}

/// Drains a session with the given per-call cap; checks the cap is honored.
IdSeq DrainSession(const Config& cfg, const ProgXeOptions& options,
                   size_t per_call, ProgXeStats* stats) {
  IdSeq seq;
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  while (!(*session)->Finished()) {
    const size_t n = (*session)->NextBatch(per_call, &batch);
    EXPECT_EQ(n, batch.size());
    if (per_call != 0) EXPECT_LE(n, per_call);
    for (const auto& res : batch) seq.emplace_back(res.r_id, res.t_id);
    if (n == 0) break;
  }
  EXPECT_TRUE((*session)->Finished());
  EXPECT_EQ((*session)->NextBatch(0, &batch), 0u);
  *stats = (*session)->stats();
  return seq;
}

class SessionEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SessionEquivalenceSweep, NextBatchMatchesRun) {
  const int param = GetParam();
  Rng rng(0x5e55 + static_cast<uint64_t>(param));
  // Every fifth config is heavily tied; every fourth has high sigma.
  const Config cfg = MakeConfig(&rng, param % 5 == 0, param % 4 == 0);

  ProgXeOptions options;
  options.seed = 0xfeed;
  // A third of the configs exercise the parallel pipeline through the
  // session; another third run with an early-termination cap.
  if (param % 3 == 1) options.num_threads = 2 + (param % 2) * 6;
  if (param % 3 == 2) options.max_results = 1 + static_cast<size_t>(param);

  ProgXeStats run_stats;
  const IdSeq reference = RunReference(cfg, options, &run_stats);

  // Tuple-at-a-time, a small odd granularity, and drain-everything.
  for (size_t per_call : {size_t{1}, size_t{3}, size_t{0}}) {
    ProgXeStats session_stats;
    const IdSeq seq = DrainSession(cfg, options, per_call, &session_stats);
    EXPECT_EQ(seq, reference) << "per_call=" << per_call
                              << ", param=" << param;
    ExpectSameStats(run_stats, session_stats, "session vs run");
  }
}

// 24 seeded configs x 3 consumption granularities (>= 20 required by the
// session-API coverage criterion), a third parallel, a third early-capped.
INSTANTIATE_TEST_SUITE_P(Seeds, SessionEquivalenceSweep,
                         ::testing::Range(0, 24));

/// Drains a session with a per-call join-pair budget. Budgeted calls may
/// legitimately return 0 while !Finished() (a mid-region yield).
IdSeq DrainSessionBudgeted(const Config& cfg, const ProgXeOptions& options,
                           size_t max_pairs, ProgXeStats* stats,
                           size_t* yields) {
  IdSeq seq;
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  while (!(*session)->Finished()) {
    const size_t n = (*session)->NextBatch(0, max_pairs, &batch);
    EXPECT_EQ(n, batch.size());
    if (n == 0 && !(*session)->Finished()) ++*yields;
    for (const auto& res : batch) seq.emplace_back(res.r_id, res.t_id);
  }
  EXPECT_EQ((*session)->NextBatch(0, max_pairs, &batch), 0u);
  *stats = (*session)->stats();
  return seq;
}

class SessionBudgetSweep : public ::testing::TestWithParam<int> {};

// The serving-layer yield point: slicing NextBatch by any join-pair budget
// must reproduce the Run stream and every counter bit-identically, and
// small budgets must actually yield mid-region.
TEST_P(SessionBudgetSweep, BudgetedNextBatchMatchesRun) {
  const int param = GetParam();
  Rng rng(0xb0d6 + static_cast<uint64_t>(param));
  const Config cfg = MakeConfig(&rng, param % 5 == 0, param % 4 == 0);

  ProgXeOptions options;
  options.seed = 0xfeed;
  if (param % 3 == 1) options.num_threads = 2 + (param % 2) * 2;
  if (param % 3 == 2) options.max_results = 1 + static_cast<size_t>(param);

  ProgXeStats run_stats;
  const IdSeq reference = RunReference(cfg, options, &run_stats);

  size_t total_yields = 0;
  for (size_t max_pairs : {size_t{1}, size_t{37}, size_t{1000}}) {
    ProgXeStats session_stats;
    size_t yields = 0;
    const IdSeq seq =
        DrainSessionBudgeted(cfg, options, max_pairs, &session_stats, &yields);
    EXPECT_EQ(seq, reference)
        << "max_pairs=" << max_pairs << ", param=" << param;
    ExpectSameStats(run_stats, session_stats, "budgeted session vs run");
    total_yields += yields;
  }
  // A 1-pair budget on any non-trivial join must pause mid-region at least
  // once; otherwise the yield point is dead code.
  if (run_stats.join_pairs_generated > 50) {
    EXPECT_GT(total_yields, 0u) << "param=" << param;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionBudgetSweep, ::testing::Range(0, 12));

TEST(Session, CloseReleasesAndFinishes) {
  Rng rng(0xc105e);
  const Config cfg = MakeConfig(&rng, false, true);

  // Consume a strict prefix, then Close: the session must report Finished,
  // deliver nothing further, and keep its stats readable.
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  ASSERT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  ASSERT_GT((*session)->NextBatch(3, &batch), 0u);
  const size_t emitted_before = (*session)->stats().results_emitted;
  (*session)->Close();
  EXPECT_TRUE((*session)->closed());
  EXPECT_TRUE((*session)->Finished());
  EXPECT_EQ((*session)->NextBatch(0, &batch), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ((*session)->stats().results_emitted, emitted_before);
  (*session)->Close();  // idempotent
  EXPECT_TRUE((*session)->Finished());
}

TEST(Session, CloseMidRegionJoinsParallelWorkers) {
  Rng rng(0xc106);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.num_threads = 4;
  const char* env_threads = std::getenv("PROGXE_TEST_THREADS");
  if (env_threads != nullptr) options.num_threads = std::atoi(env_threads);

  // Yield mid-region with a tiny budget, then Close while the pipeline
  // still holds an open region: worker teardown must be deterministic.
  auto session = ProgXeSession::Open(cfg.query(), options);
  ASSERT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  (*session)->NextBatch(0, /*max_pairs=*/1, &batch);
  EXPECT_FALSE((*session)->Finished());
  (*session)->Close();
  EXPECT_TRUE((*session)->Finished());

  // Destructor-only teardown of a yielded session must be clean too.
  auto session2 = ProgXeSession::Open(cfg.query(), options);
  ASSERT_TRUE(session2.ok());
  (*session2)->NextBatch(0, /*max_pairs=*/1, &batch);
}

TEST(Session, EmptySourcesFinishImmediately) {
  Config cfg;
  cfg.r = Relation(Schema::Anonymous(2));
  cfg.t = Relation(Schema::Anonymous(2));
  cfg.map = MapSpec::PairwiseSum(2);
  cfg.pref = Preference::AllLowest(2);
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->Finished());
  std::vector<ResultTuple> batch;
  EXPECT_EQ((*session)->NextBatch(10, &batch), 0u);
  EXPECT_TRUE(batch.empty());
}

TEST(Session, OpenValidatesQuery) {
  Config cfg;
  cfg.r = Relation(Schema::Anonymous(2));
  cfg.t = Relation(Schema::Anonymous(2));
  cfg.map = MapSpec::PairwiseSum(2);
  cfg.pref = Preference::AllLowest(3);  // dimensionality mismatch
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

TEST(Session, StatsVisibleBeforeFirstBatch) {
  Rng rng(0xabcd);
  const Config cfg = MakeConfig(&rng, false, false);
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  ASSERT_TRUE(session.ok());
  // PreparePhase counters are already populated at Open.
  EXPECT_EQ((*session)->stats().r_rows, cfg.r.size());
  EXPECT_EQ((*session)->stats().t_rows, cfg.t.size());
  EXPECT_GT((*session)->stats().regions_created, 0u);
  EXPECT_EQ((*session)->stats().results_emitted, 0u);
}

}  // namespace
}  // namespace progxe
