// ProgXeSession tests: incremental NextBatch consumption must deliver
// exactly the one-shot Run emission sequence with identical ProgXeStats
// counters, across randomized seeded configs, batch granularities, thread
// counts and early termination.
#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>
#include <vector>

#include "equivalence_common.h"
#include "progxe/session.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

using IdSeq = std::vector<std::pair<RowId, RowId>>;

/// One-shot Run reference: emission sequence + stats.
IdSeq RunReference(const Config& cfg, const ProgXeOptions& options,
                   ProgXeStats* stats) {
  IdSeq seq;
  ProgXeExecutor exec(cfg.query(), options);
  EXPECT_TRUE(exec.Run([&](const ResultTuple& res) {
                    seq.emplace_back(res.r_id, res.t_id);
                  })
                  .ok());
  *stats = exec.stats();
  return seq;
}

/// Drains a session with the given per-call cap; checks the cap is honored.
IdSeq DrainSession(const Config& cfg, const ProgXeOptions& options,
                   size_t per_call, ProgXeStats* stats) {
  IdSeq seq;
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  std::vector<ResultTuple> batch;
  while (!(*session)->Finished()) {
    const size_t n = (*session)->NextBatch(per_call, &batch);
    EXPECT_EQ(n, batch.size());
    if (per_call != 0) EXPECT_LE(n, per_call);
    for (const auto& res : batch) seq.emplace_back(res.r_id, res.t_id);
    if (n == 0) break;
  }
  EXPECT_TRUE((*session)->Finished());
  EXPECT_EQ((*session)->NextBatch(0, &batch), 0u);
  *stats = (*session)->stats();
  return seq;
}

class SessionEquivalenceSweep : public ::testing::TestWithParam<int> {};

TEST_P(SessionEquivalenceSweep, NextBatchMatchesRun) {
  const int param = GetParam();
  Rng rng(0x5e55 + static_cast<uint64_t>(param));
  // Every fifth config is heavily tied; every fourth has high sigma.
  const Config cfg = MakeConfig(&rng, param % 5 == 0, param % 4 == 0);

  ProgXeOptions options;
  options.seed = 0xfeed;
  // A third of the configs exercise the parallel pipeline through the
  // session; another third run with an early-termination cap.
  if (param % 3 == 1) options.num_threads = 2 + (param % 2) * 6;
  if (param % 3 == 2) options.max_results = 1 + static_cast<size_t>(param);

  ProgXeStats run_stats;
  const IdSeq reference = RunReference(cfg, options, &run_stats);

  // Tuple-at-a-time, a small odd granularity, and drain-everything.
  for (size_t per_call : {size_t{1}, size_t{3}, size_t{0}}) {
    ProgXeStats session_stats;
    const IdSeq seq = DrainSession(cfg, options, per_call, &session_stats);
    EXPECT_EQ(seq, reference) << "per_call=" << per_call
                              << ", param=" << param;
    ExpectSameStats(run_stats, session_stats, "session vs run");
  }
}

// 24 seeded configs x 3 consumption granularities (>= 20 required by the
// session-API coverage criterion), a third parallel, a third early-capped.
INSTANTIATE_TEST_SUITE_P(Seeds, SessionEquivalenceSweep,
                         ::testing::Range(0, 24));

TEST(Session, EmptySourcesFinishImmediately) {
  Config cfg;
  cfg.r = Relation(Schema::Anonymous(2));
  cfg.t = Relation(Schema::Anonymous(2));
  cfg.map = MapSpec::PairwiseSum(2);
  cfg.pref = Preference::AllLowest(2);
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE((*session)->Finished());
  std::vector<ResultTuple> batch;
  EXPECT_EQ((*session)->NextBatch(10, &batch), 0u);
  EXPECT_TRUE(batch.empty());
}

TEST(Session, OpenValidatesQuery) {
  Config cfg;
  cfg.r = Relation(Schema::Anonymous(2));
  cfg.t = Relation(Schema::Anonymous(2));
  cfg.map = MapSpec::PairwiseSum(2);
  cfg.pref = Preference::AllLowest(3);  // dimensionality mismatch
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  EXPECT_TRUE(session.status().IsInvalidArgument());
}

TEST(Session, StatsVisibleBeforeFirstBatch) {
  Rng rng(0xabcd);
  const Config cfg = MakeConfig(&rng, false, false);
  auto session = ProgXeSession::Open(cfg.query(), ProgXeOptions());
  ASSERT_TRUE(session.ok());
  // PreparePhase counters are already populated at Open.
  EXPECT_EQ((*session)->stats().r_rows, cfg.r.size());
  EXPECT_EQ((*session)->stats().t_rows, cfg.t.size());
  EXPECT_GT((*session)->stats().regions_created, 0u);
  EXPECT_EQ((*session)->stats().results_emitted, 0u);
}

}  // namespace
}  // namespace progxe
