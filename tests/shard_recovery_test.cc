// Shard fault-recovery tests: a ShardedStream hit by injected faults must
// quarantine the failing shard, re-open it with bounded backoff, and — via
// idempotent replay — deliver a result set bit-identical to the fault-free
// run, with zero retractions. When retries are exhausted the stream either
// fails with the real error (default) or, under ShardOptions::allow_partial,
// completes with an accurate per-shard coverage report; either way no
// scheduler worker is ever wedged.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "equivalence_common.h"
#include "progxe/session.h"
#include "progxe/stream.h"
#include "service/scheduler.h"
#include "shard/shard_planner.h"
#include "shard/sharded_stream.h"

namespace progxe {
namespace {

using test::Config;
using test::MakeConfig;

using IdSet = std::vector<std::pair<RowId, RowId>>;

IdSet SortedIds(const std::vector<ResultTuple>& results) {
  IdSet ids;
  ids.reserve(results.size());
  for (const ResultTuple& res : results) ids.emplace_back(res.r_id, res.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<ResultTuple> DrainStream(ProgXeStream* stream, size_t max_results,
                                     size_t max_pairs) {
  std::vector<ResultTuple> all;
  std::vector<ResultTuple> batch;
  while (!stream->Finished()) {
    const size_t n = stream->NextBatch(max_results, max_pairs, &batch);
    if (n == 0) {
      if (max_pairs == 0) break;
      continue;
    }
    for (ResultTuple& res : batch) all.push_back(std::move(res));
  }
  return all;
}

IdSet UnshardedReference(const Config& cfg, const ProgXeOptions& options) {
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  return SortedIds(DrainStream(session->get(), 0, 0));
}

std::shared_ptr<FaultInjector> MustParse(const std::string& spec,
                                         uint64_t seed) {
  auto injector = FaultInjector::Parse(spec, seed);
  EXPECT_TRUE(injector.ok()) << injector.status().ToString();
  return injector.MoveValue();
}

// The acceptance sweep: shard-local fault sites x seeds x K in {2, 4, 8}.
// Every faulted-and-recovered run must deliver exactly the fault-free set
// (sorted-vector equality doubles as the no-duplicate / no-retraction
// check), report complete coverage, and leave no error behind. Transient
// failures are consumed silently by the retry machinery — the only trace is
// ShardCoverage::retries.
TEST(ShardRecovery, RetriedRunsDeliverTheFaultFreeSet) {
  int64_t total_fires = 0;
  uint64_t total_retries = 0;
  for (uint64_t seed : {uint64_t{1}, uint64_t{7}, uint64_t{23}}) {
    Rng rng(0x5eed + seed);
    const Config cfg = MakeConfig(&rng, seed % 2 == 0, seed % 3 == 0);
    ProgXeOptions options;
    options.seed = 0xfeed;
    const IdSet reference = UnshardedReference(cfg, options);

    // kPrepareBuild fails inside the shard session's prepare phase (an open
    // failure to the recovery layer); kPipelineChunk kills the region loop
    // mid-stream through the session's error channel (a next_batch
    // failure). Both must ride the same quarantine/re-open/replay path as
    // the shard-seam sites.
    for (const char* site :
         {fault_sites::kShardOpen, fault_sites::kShardNextBatch,
          fault_sites::kPrepareBuild, fault_sites::kPipelineChunk}) {
      for (int num_shards : {2, 4, 8}) {
        ProgXeOptions faulty = options;
        // max=6 bounds the fire budget under max_retries=8, so a shard can
        // never see enough consecutive failures to exhaust its retries:
        // recovery is guaranteed, making the sweep deterministic-green.
        faulty.faults = MustParse(std::string(site) + ":p=0.3,max=6", seed);
        ShardOptions shard_options;
        shard_options.num_shards = num_shards;
        shard_options.max_retries = 8;
        shard_options.retry_backoff = std::chrono::milliseconds(0);

        auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
        ASSERT_TRUE(stream.ok())
            << "site=" << site << " K=" << num_shards << " seed=" << seed;
        const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 0));
        EXPECT_EQ(delivered, reference)
            << "site=" << site << " K=" << num_shards << " seed=" << seed;
        EXPECT_TRUE((*stream)->last_status().ok());
        const ShardCoverage coverage = (*stream)->coverage();
        EXPECT_TRUE(coverage.complete());
        EXPECT_EQ(coverage.shards, num_shards);
        EXPECT_EQ(coverage.completed, num_shards);
        total_fires += faulty.faults->fires();
        total_retries += coverage.retries;
      }
    }
  }
  // The sweep must actually have exercised the recovery path — a spec that
  // never fires (or retries that never happen) would make it vacuous.
  EXPECT_GT(total_fires, 0);
  EXPECT_GT(total_retries, 0u);
}

// Budgeted (sliced) consumption across a fault: the backoff window turns
// into yields, never into a wedge, and the delivered set is still exact.
TEST(ShardRecovery, BudgetedDrainAcrossFaultsYieldsAndRecovers) {
  Rng rng(0x5eedb);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  const IdSet reference = UnshardedReference(cfg, options);

  ProgXeOptions faulty = options;
  faulty.faults = MustParse("shard.next_batch:p=1,max=3", 3);
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.max_retries = 8;
  shard_options.retry_backoff = std::chrono::milliseconds(1);
  auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
  ASSERT_TRUE(stream.ok());
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 5, 64));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->coverage().complete());
  EXPECT_GT((*stream)->coverage().retries, 0u);
}

// Retry exhaustion without allow_partial: the stream dies with the real
// error, terminally and observably — NextBatch 0, Finished true, the
// injected code on last_status, stats still readable.
TEST(ShardRecovery, RetryExhaustionFailsTheStream) {
  Rng rng(0x5eedc);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions faulty;
  faulty.faults = MustParse("shard.open:p=1", 0);
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.max_retries = 1;
  shard_options.retry_backoff = std::chrono::milliseconds(0);
  auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
  ASSERT_TRUE(stream.ok()) << "transient open failures must not fail Open";

  std::vector<ResultTuple> batch;
  EXPECT_EQ((*stream)->NextBatch(0, 0, &batch), 0u);
  EXPECT_TRUE((*stream)->Finished());
  const Status death = (*stream)->last_status();
  ASSERT_FALSE(death.ok());
  EXPECT_TRUE(death.IsUnavailable());
  // No shard ran to completion. (complete() itself only tracks *abandoned*
  // shards — the kPartial contract — and a failed stream abandons nothing;
  // last_status is the authoritative failure signal here.)
  EXPECT_EQ((*stream)->coverage().completed, 0);
  // Sticky: the dead stream stays dead and quiet.
  EXPECT_EQ((*stream)->NextBatch(0, 0, &batch), 0u);
  EXPECT_EQ((*stream)->last_status().code(), death.code());
}

// A non-retryable injected code is a decision, not a transient: it
// propagates straight out of Open instead of entering quarantine.
TEST(ShardRecovery, NonRetryableOpenFaultPropagates) {
  Rng rng(0x5eedd);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions faulty;
  faulty.faults = MustParse("shard.open:p=1,code=invalid_argument", 0);
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsInvalidArgument());
}

// A merge.release fault is not shard-local (the shared merge state is
// suspect), so the whole stream fails — no retry, no partial.
TEST(ShardRecovery, MergeReleaseFaultFailsWholeStream) {
  Rng rng(0x5eede);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions faulty;
  faulty.faults = MustParse("merge.release:p=1,code=io_error", 0);
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.allow_partial = true;  // must not rescue a merge fault
  auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
  ASSERT_TRUE(stream.ok());
  std::vector<ResultTuple> batch;
  EXPECT_EQ((*stream)->NextBatch(0, 0, &batch), 0u);
  EXPECT_TRUE((*stream)->Finished());
  EXPECT_TRUE((*stream)->last_status().IsIOError());
}

// Graceful degradation, crisp case: shard 0 abandoned at its very first
// open (nothing ever observed from it), so the delivered set must be
// *exactly* the skyline of the covered shards' data — computed here as an
// independent unsharded run over the original relations with shard 0's
// rows removed, compared by original row ids.
TEST(ShardRecovery, AllowPartialDeliversExactlyTheCoveredSkyline) {
  Rng rng(0x5eedf);
  const Config cfg = MakeConfig(&rng, false, true);
  constexpr int kShards = 4;

  // Abandon a shard that actually owns rows (high sigma means few join-key
  // classes, so some shards can be empty): the one holding row 0's key.
  const int victim = ShardOfKey(cfg.r.join_key(0), kShards);

  // Covered-only reference: drop every row whose join key hashes to the
  // abandoned shard, run unsharded, map the renumbered ids back.
  std::vector<RowId> keep_r, keep_t;
  for (RowId i = 0; i < static_cast<RowId>(cfg.r.size()); ++i) {
    if (ShardOfKey(cfg.r.join_key(i), kShards) != victim) keep_r.push_back(i);
  }
  for (RowId i = 0; i < static_cast<RowId>(cfg.t.size()); ++i) {
    if (ShardOfKey(cfg.t.join_key(i), kShards) != victim) keep_t.push_back(i);
  }
  ASSERT_LT(keep_r.size(), cfg.r.size());
  std::vector<RowId> r_orig, t_orig;
  Config covered;
  covered.r = cfg.r.Select(keep_r, &r_orig);
  covered.t = cfg.t.Select(keep_t, &t_orig);
  covered.map = cfg.map;
  covered.pref = cfg.pref;
  ProgXeOptions options;
  options.seed = 0xfeed;
  IdSet reference;
  for (const auto& [r_id, t_id] : UnshardedReference(covered, options)) {
    reference.emplace_back(r_orig[r_id], t_orig[t_id]);
  }
  std::sort(reference.begin(), reference.end());

  ProgXeOptions faulty = options;
  faulty.faults = MustParse(
      "shard.open:p=1,shard=" + std::to_string(victim), 0);
  ShardOptions shard_options;
  shard_options.num_shards = kShards;
  shard_options.max_retries = 0;
  shard_options.allow_partial = true;
  auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
  ASSERT_TRUE(stream.ok());
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 0));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->last_status().ok());

  const ShardCoverage coverage = (*stream)->coverage();
  EXPECT_FALSE(coverage.complete());
  EXPECT_EQ(coverage.shards, kShards);
  EXPECT_EQ(coverage.completed, kShards - 1);
  EXPECT_EQ(coverage.abandoned, 1);
  ASSERT_EQ(coverage.abandoned_shards.size(), 1u);
  EXPECT_EQ(coverage.abandoned_shards[0], victim);
  EXPECT_FALSE(coverage.ToString().empty());
}

/// Restores PROGXE_FAULT_RETRIES on scope exit even when an ASSERT bails
/// (the soak CI job sets it process-wide; clobbering it would change the
/// behavior of every later test in this binary).
struct ScopedRetryEnv {
  explicit ScopedRetryEnv(const char* value) {
    const char* prev = std::getenv("PROGXE_FAULT_RETRIES");
    had_prev_ = prev != nullptr;
    if (had_prev_) prev_ = prev;
    setenv("PROGXE_FAULT_RETRIES", value, 1);
  }
  ~ScopedRetryEnv() {
    if (had_prev_) {
      setenv("PROGXE_FAULT_RETRIES", prev_.c_str(), 1);
    } else {
      unsetenv("PROGXE_FAULT_RETRIES");
    }
  }
  std::string prev_;
  bool had_prev_ = false;
};

// PROGXE_FAULT_RETRIES raises max_retries from the environment — the soak
// job's survivability knob: an ambient fault spec must not kill suites that
// configured no retries of their own.
TEST(ShardRecovery, EnvRetryOverrideRescuesZeroRetryStreams) {
  ScopedRetryEnv env("8");
  Rng rng(0x5eed0);
  const Config cfg = MakeConfig(&rng, false, false);
  ProgXeOptions options;
  options.seed = 0xfeed;
  const IdSet reference = UnshardedReference(cfg, options);

  ProgXeOptions faulty = options;
  faulty.faults = MustParse("shard.open:p=1,max=2", 0);
  ShardOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.max_retries = 0;  // would fail immediately without the env
  shard_options.retry_backoff = std::chrono::milliseconds(0);
  auto stream = OpenProgXeStream(cfg.query(), faulty, shard_options);
  ASSERT_TRUE(stream.ok());
  const IdSet delivered = SortedIds(DrainStream(stream->get(), 0, 0));
  EXPECT_EQ(delivered, reference);
  EXPECT_TRUE((*stream)->coverage().complete());
}

/// Sink recording terminal state; asserts exactly one OnDone.
class PartialSink : public QuerySink {
 public:
  void OnBatch(const std::vector<ResultTuple>& batch) override {
    results_ += batch.size();
  }
  void OnDone(QueryState state, const Status& status,
              const ProgXeStats&) override {
    EXPECT_FALSE(done_) << "OnDone fired twice";
    done_ = true;
    state_ = state;
    status_ = status;
  }
  bool done() const { return done_; }
  QueryState state() const { return state_; }
  const Status& status() const { return status_; }
  size_t results() const { return results_; }

 private:
  bool done_ = false;
  QueryState state_ = QueryState::kQueued;
  Status status_;
  size_t results_ = 0;
};

// End-to-end through the serving layer: retry exhaustion becomes kFailed
// with the real error by default, kPartial with accurate handle coverage
// under SubmitOptions::allow_partial — and Drain() returns either way (an
// exhausted shard must never wedge a scheduler worker).
TEST(ShardRecovery, SchedulerDegradesOrFailsOnExhaustion) {
  Rng rng(0x5eed1);
  const Config cfg = MakeConfig(&rng, false, true);

  for (bool allow_partial : {false, true}) {
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.batch_budget = 64;
    QueryScheduler scheduler(sopts);

    ProgXeOptions faulty;
    faulty.faults = MustParse("shard.open:p=1,shard=0", 0);
    SubmitOptions submit;
    submit.shards.num_shards = 4;
    submit.shards.max_retries = 0;
    submit.shards.retry_backoff = std::chrono::milliseconds(0);
    submit.allow_partial = allow_partial;

    PartialSink sink;
    auto handle = scheduler.Submit(cfg.query(), faulty, &sink, submit);
    ASSERT_TRUE(handle.ok());
    scheduler.Drain();
    ASSERT_TRUE(sink.done());

    const SchedulerStats stats = scheduler.stats();
    if (allow_partial) {
      EXPECT_EQ(handle->state(), QueryState::kPartial);
      EXPECT_EQ(sink.state(), QueryState::kPartial);
      EXPECT_TRUE(sink.status().ok());
      const ShardCoverage& coverage = handle->coverage();
      EXPECT_EQ(coverage.completed, 3);
      EXPECT_EQ(coverage.abandoned, 1);
      EXPECT_EQ(stats.partial, 1u);
      EXPECT_EQ(stats.shards_abandoned, 1u);
      EXPECT_EQ(stats.failed, 0u);
    } else {
      EXPECT_EQ(handle->state(), QueryState::kFailed);
      EXPECT_EQ(sink.state(), QueryState::kFailed);
      EXPECT_TRUE(sink.status().IsUnavailable());
      EXPECT_TRUE(handle->status().IsUnavailable());
      EXPECT_EQ(sink.results(), 0u);
      EXPECT_EQ(stats.failed, 1u);
      EXPECT_EQ(stats.partial, 0u);
    }
  }
}

// Recovered queries through the scheduler: transient faults are invisible
// in the outcome (kFinished, exact set) but counted in shard_retries.
TEST(ShardRecovery, SchedulerServedRetriesAreExactAndCounted) {
  Rng rng(0x5eed2);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  const IdSet reference = UnshardedReference(cfg, options);

  ServiceOptions sopts;
  sopts.num_workers = 2;
  sopts.batch_budget = 64;
  QueryScheduler scheduler(sopts);

  struct CollectingSink : PartialSink {
    IdSet seq;
    void OnBatch(const std::vector<ResultTuple>& batch) override {
      PartialSink::OnBatch(batch);
      for (const ResultTuple& res : batch) seq.emplace_back(res.r_id, res.t_id);
    }
  };
  CollectingSink sink;
  ProgXeOptions faulty = options;
  faulty.faults = MustParse("shard.open:p=1,max=2", 11);
  SubmitOptions submit;
  submit.shards.num_shards = 4;
  submit.shards.max_retries = 8;
  submit.shards.retry_backoff = std::chrono::milliseconds(1);
  auto handle = scheduler.Submit(cfg.query(), faulty, &sink, submit);
  ASSERT_TRUE(handle.ok());
  scheduler.Drain();

  EXPECT_EQ(handle->state(), QueryState::kFinished);
  IdSet served = sink.seq;
  std::sort(served.begin(), served.end());
  EXPECT_EQ(served, reference);
  EXPECT_TRUE(handle->coverage().complete());
  EXPECT_GT(handle->coverage().retries, 0u);
  EXPECT_GT(scheduler.stats().shard_retries, 0u);
  EXPECT_EQ(scheduler.stats().shards_abandoned, 0u);
}

// The backoff schedule is a pure function of (options, seed, shard,
// consecutive_failures): the same seed reproduces the same schedule bit for
// bit, every delay stays inside the documented ±retry_jitter envelope
// around the capped exponential base, and distinct shards land on distinct
// offsets so simultaneously-sick shards desynchronize their re-opens.
TEST(ShardRecovery, JitteredBackoffIsDeterministicAndBounded) {
  ShardOptions opts;
  opts.retry_backoff = std::chrono::milliseconds(10);
  opts.retry_jitter = 0.25;

  std::vector<std::chrono::nanoseconds> first_attempts;
  for (uint64_t seed : {uint64_t{0}, uint64_t{42}, uint64_t{0xfeed}}) {
    for (int shard = 0; shard < 4; ++shard) {
      for (int failures = 1; failures <= 10; ++failures) {
        const auto delay = JitteredRetryBackoff(opts, seed, shard, failures);
        // Deterministic: the same arguments always yield the same delay.
        EXPECT_EQ(delay, JitteredRetryBackoff(opts, seed, shard, failures));
        // Bounded: base * [1 - jitter, 1 + jitter], base doubling per
        // failure and capped at 64x the configured backoff.
        const auto base =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                opts.retry_backoff) *
            (1 << std::min(failures - 1, 6));
        EXPECT_GE(delay, base * 3 / 4)
            << "seed=" << seed << " shard=" << shard << " cf=" << failures;
        EXPECT_LE(delay, base * 5 / 4)
            << "seed=" << seed << " shard=" << shard << " cf=" << failures;
        if (seed == 0 && failures == 1) first_attempts.push_back(delay);
      }
    }
  }
  // Desynchronization: four shards' first re-opens must not collapse onto
  // one instant (at least two distinct offsets under a shared seed).
  std::sort(first_attempts.begin(), first_attempts.end());
  const auto distinct =
      std::unique(first_attempts.begin(), first_attempts.end()) -
      first_attempts.begin();
  EXPECT_GT(distinct, 1);

  // jitter = 0 restores the exact exponential schedule, including the cap.
  opts.retry_jitter = 0.0;
  EXPECT_EQ(JitteredRetryBackoff(opts, 7, 2, 1),
            std::chrono::nanoseconds(std::chrono::milliseconds(10)));
  EXPECT_EQ(JitteredRetryBackoff(opts, 7, 2, 4),
            std::chrono::nanoseconds(std::chrono::milliseconds(80)));
  EXPECT_EQ(JitteredRetryBackoff(opts, 7, 2, 20),
            std::chrono::nanoseconds(std::chrono::milliseconds(640)));

  // A zero base backoff stays zero regardless of jitter.
  opts.retry_jitter = 0.25;
  opts.retry_backoff = std::chrono::milliseconds(0);
  EXPECT_EQ(JitteredRetryBackoff(opts, 7, 2, 3).count(), 0);
}

// The stream-wide retry budget (ShardOptions::max_total_retries) caps the
// total re-opens across all shards even when the per-shard budget would
// allow many more: against a persistent fault the stream commits exactly
// max_total_retries re-opens and then degrades (allow_partial) or fails —
// and either way Drain() returns with the exact spend in coverage().
TEST(ShardRecovery, TotalRetryBudgetCapsRecovery) {
  Rng rng(0x5eed3);
  const Config cfg = MakeConfig(&rng, true, false);

  for (bool allow_partial : {false, true}) {
    ServiceOptions sopts;
    sopts.num_workers = 2;
    sopts.batch_budget = 64;
    QueryScheduler scheduler(sopts);

    ProgXeOptions faulty;
    faulty.faults = MustParse("shard.open:p=1,shard=0", 0);
    SubmitOptions submit;
    submit.shards.num_shards = 4;
    submit.shards.max_retries = 50;       // ample per-shard budget...
    submit.shards.max_total_retries = 3;  // ...capped stream-wide
    submit.shards.retry_backoff = std::chrono::milliseconds(0);
    submit.allow_partial = allow_partial;

    PartialSink sink;
    auto handle = scheduler.Submit(cfg.query(), faulty, &sink, submit);
    ASSERT_TRUE(handle.ok());
    scheduler.Drain();
    ASSERT_TRUE(sink.done());

    const ShardCoverage& coverage = handle->coverage();
    EXPECT_EQ(coverage.retries, 3u);
    if (allow_partial) {
      EXPECT_EQ(handle->state(), QueryState::kPartial);
      EXPECT_TRUE(sink.status().ok());
      EXPECT_EQ(coverage.completed, 3);
      EXPECT_EQ(coverage.abandoned, 1);
    } else {
      EXPECT_EQ(handle->state(), QueryState::kFailed);
      EXPECT_TRUE(handle->status().IsUnavailable());
    }
  }
}

// --- Checkpointed recovery -------------------------------------------------

// Session-level resume round trip: a session abandoned mid-drain exports a
// resume point at a region boundary; a session opened from it skips the
// finished regions and the union of pre-checkpoint and resumed deliveries
// covers the reference skyline. When a *processed* region was skipped the
// resumed incarnation provably re-joins fewer pairs than a from-scratch
// replay, and reports the savings.
TEST(CheckpointRecovery, SessionRoundTripCoversTheReference) {
  int resumed_with_savings = 0;
  for (uint64_t seed : {uint64_t{2}, uint64_t{9}, uint64_t{31}, uint64_t{40},
                        uint64_t{57}}) {
    Rng rng(0xc4ec + seed);
    const Config cfg = MakeConfig(&rng, seed % 2 == 1, seed % 3 == 1);
    ProgXeOptions options;
    options.seed = 0xfeed;

    auto reference_session = ProgXeSession::Open(cfg.query(), options);
    ASSERT_TRUE(reference_session.ok());
    const IdSet reference =
        SortedIds(DrainStream(reference_session->get(), 0, 0));
    const uint64_t full_pairs =
        (*reference_session)->stats().join_pairs_generated;

    auto first = ProgXeSession::Open(cfg.query(), options);
    ASSERT_TRUE(first.ok());
    std::vector<ResultTuple> batch;
    IdSet before;
    SessionCheckpoint checkpoint;
    bool have_checkpoint = false;
    // Pump in small slices, keeping the freshest exportable resume point;
    // stop part-way so the checkpoint is a genuine mid-run snapshot.
    for (int pumps = 0; pumps < 5 && !(*first)->Finished(); ++pumps) {
      (*first)->NextBatch(0, 512, &batch);
      for (const ResultTuple& res : batch) {
        before.emplace_back(res.r_id, res.t_id);
      }
      if ((*first)->ExportCheckpoint(&checkpoint)) have_checkpoint = true;
    }
    if (!have_checkpoint || (*first)->Finished()) continue;

    auto resumed = ProgXeSession::Open(cfg.query(), options, &checkpoint);
    ASSERT_TRUE(resumed.ok()) << "seed=" << seed;
    EXPECT_EQ((*resumed)->resumed(), !checkpoint.skip_regions.empty());
    EXPECT_EQ((*resumed)->resumed_regions_skipped(),
              static_cast<uint32_t>(checkpoint.skip_regions.size()));
    const IdSet after = SortedIds(DrainStream(resumed->get(), 0, 0));
    EXPECT_TRUE((*resumed)->last_status().ok());

    // Union covers the reference: every skyline member was either already
    // delivered before the checkpoint or is re-delivered by the resume. (A
    // standalone resumed session may emit a few extra dominated tuples —
    // per-point suppression state of skipped regions is not rebuilt; the
    // sharded merge filters those via its accepted frontier.)
    IdSet uni = before;
    uni.insert(uni.end(), after.begin(), after.end());
    std::sort(uni.begin(), uni.end());
    uni.erase(std::unique(uni.begin(), uni.end()), uni.end());
    EXPECT_TRUE(
        std::includes(uni.begin(), uni.end(), reference.begin(),
                      reference.end()))
        << "seed=" << seed;

    if ((*resumed)->replay_pairs_saved() > 0) {
      ++resumed_with_savings;
      EXPECT_LT((*resumed)->stats().join_pairs_generated, full_pairs)
          << "seed=" << seed;
    }
  }
  // The sweep must actually exercise a resume that skipped processed
  // regions, or the savings contract is untested.
  EXPECT_GT(resumed_with_savings, 0);
}

// A corrupt or stale checkpoint must be rejected as InvalidArgument — a
// full replay is always sound, resuming from garbage never is — and the
// rejection must not poison later clean opens.
TEST(CheckpointRecovery, CorruptCheckpointRejectedCleanOpenStillWorks) {
  Rng rng(0xc4ed);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;

  auto first = ProgXeSession::Open(cfg.query(), options);
  ASSERT_TRUE(first.ok());
  std::vector<ResultTuple> batch;
  SessionCheckpoint checkpoint;
  bool have_checkpoint = false;
  for (int pumps = 0; pumps < 12 && !(*first)->Finished(); ++pumps) {
    (*first)->NextBatch(0, 512, &batch);
    if ((*first)->ExportCheckpoint(&checkpoint) &&
        !checkpoint.skip_regions.empty()) {
      have_checkpoint = true;
      break;
    }
  }
  ASSERT_TRUE(have_checkpoint) << "workload never exported a resume point";

  auto expect_rejected = [&](const SessionCheckpoint& bad, const char* what) {
    auto opened = ProgXeSession::Open(cfg.query(), options, &bad);
    ASSERT_FALSE(opened.ok()) << what;
    EXPECT_TRUE(opened.status().IsInvalidArgument()) << what;
  };
  SessionCheckpoint bad = checkpoint;
  bad.k += 1;
  expect_rejected(bad, "wrong k");
  bad = checkpoint;
  bad.region_count += 7;
  expect_rejected(bad, "wrong region_count");
  bad = checkpoint;
  bad.skip_regions[0] = static_cast<int32_t>(bad.region_count) + 10;
  expect_rejected(bad, "skip id out of range");
  if (checkpoint.skip_regions.size() >= 2) {
    bad = checkpoint;
    std::swap(bad.skip_regions[0], bad.skip_regions[1]);
    expect_rejected(bad, "skip ids not increasing");
  }

  // The rejections above must not leave residue: a clean open of the same
  // query still delivers the exact skyline.
  const IdSet reference = UnshardedReference(cfg, options);
  auto clean = ProgXeSession::Open(cfg.query(), options);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(SortedIds(DrainStream(clean->get(), 0, 0)), reference);
}

// The tentpole acceptance leg: a shard killed mid-run recovers through the
// checkpointed retry, the delivered set stays bit-identical to the
// fault-free reference, and the checkpointed replay re-joins strictly
// fewer pairs than the same kill replayed from scratch
// (checkpoint_retry=false restores the old full-replay behavior).
TEST(CheckpointRecovery, CheckpointedRetryReplaysLessAndStaysExact) {
  int exercised = 0;
  for (uint64_t seed : {uint64_t{3}, uint64_t{11}, uint64_t{27}}) {
    Rng rng(0xc4ee + seed);
    const Config cfg = MakeConfig(&rng, false, seed % 2 == 0);
    ProgXeOptions options;
    options.seed = 0xfeed;
    const IdSet reference = UnshardedReference(cfg, options);

    for (int kill_after : {1, 3}) {
      uint64_t pairs_with = 0;
      uint64_t pairs_without = 0;
      uint64_t saved = 0;
      uint64_t retries_with = 0;
      uint64_t retries_without = 0;
      for (const bool checkpoint_retry : {true, false}) {
        ProgXeOptions faulty = options;
        faulty.faults = MustParse("shard.next_batch:shard=0,skip=" +
                                      std::to_string(kill_after) + ",max=1",
                                  seed);
        ShardOptions shard_options;
        shard_options.num_shards = 4;
        shard_options.max_retries = 4;
        shard_options.retry_backoff = std::chrono::milliseconds(0);
        shard_options.checkpoint_retry = checkpoint_retry;

        auto stream =
            ShardedStream::Open(cfg.query(), faulty, shard_options);
        ASSERT_TRUE(stream.ok())
            << "seed=" << seed << " kill_after=" << kill_after;
        const IdSet delivered =
            SortedIds(DrainStream(stream->get(), 0, 192));
        EXPECT_EQ(delivered, reference)
            << "seed=" << seed << " kill_after=" << kill_after
            << " checkpoint_retry=" << checkpoint_retry;
        EXPECT_TRUE((*stream)->last_status().ok());
        const ShardCoverage coverage = (*stream)->coverage();
        EXPECT_TRUE(coverage.complete());
        if (checkpoint_retry) {
          pairs_with = (*stream)->stats().join_pairs_generated;
          saved = coverage.replay_pairs_saved;
          retries_with = coverage.retries;
        } else {
          pairs_without = (*stream)->stats().join_pairs_generated;
          retries_without = coverage.retries;
          EXPECT_EQ(coverage.replay_pairs_saved, 0u);
        }
      }
      // The two modes run the identical kill schedule and are byte-for-byte
      // identical up to the kill, so the fault fires in both or neither
      // (shard 0 may legitimately finish before call kill_after+1 for some
      // seeds — those iterations only exercise the exactness check above).
      EXPECT_EQ(retries_with > 0, retries_without > 0)
          << "seed=" << seed << " kill_after=" << kill_after;
      if (saved > 0) {
        ++exercised;
        // The resume skipped processed regions: the total join work —
        // including the dead incarnation's — must undercut the
        // from-scratch replay of the identical kill schedule.
        EXPECT_LT(pairs_with, pairs_without)
            << "seed=" << seed << " kill_after=" << kill_after;
      }
    }
  }
  // At least one kill must land after a resumable boundary with processed
  // regions behind it, or the savings path was never exercised.
  EXPECT_GT(exercised, 0);
}

// The per-shard replay-dedup set is sized by delivered results, so it must
// be freed eagerly: as each shard drains healthy its set drops to zero
// instead of lingering until stream teardown.
TEST(CheckpointRecovery, DedupSetsFreeAsShardsFinishHealthy) {
  Rng rng(0xc4ef);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  const IdSet reference = UnshardedReference(cfg, options);

  ShardOptions shard_options;
  shard_options.num_shards = 4;
  shard_options.max_retries = 2;  // enables the dedup sets
  shard_options.retry_backoff = std::chrono::milliseconds(0);
  auto stream = ShardedStream::Open(cfg.query(), options, shard_options);
  ASSERT_TRUE(stream.ok());

  size_t peak = 0;
  std::vector<ResultTuple> batch;
  IdSet delivered;
  while (!(*stream)->Finished()) {
    (*stream)->NextBatch(0, 256, &batch);
    peak = std::max(peak, (*stream)->dedup_entries());
    for (const ResultTuple& res : batch) {
      delivered.emplace_back(res.r_id, res.t_id);
    }
  }
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, reference);
  EXPECT_GT(peak, 0u) << "dedup sets never filled - vacuous test";
  EXPECT_EQ((*stream)->dedup_entries(), 0u)
      << "healthy-finished shards must free their dedup sets";
}

}  // namespace
}  // namespace progxe
