// ShardedStream tests: serving a query through K hash-partitioned engine
// shards must deliver exactly the unsharded result *set* — only
// guaranteed-final tuples, no retractions, no duplicates — with the
// aggregate ProgXeStats equal to the per-shard counters summed, for any
// K, consumption granularity, pair budget and thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "equivalence_common.h"
#include "progxe/session.h"
#include "progxe/stream.h"
#include "shard/shard_planner.h"
#include "shard/sharded_stream.h"

namespace progxe {
namespace {

using test::Config;
using test::ExpectSameStats;
using test::MakeConfig;

using IdSet = std::vector<std::pair<RowId, RowId>>;

IdSet SortedIds(const std::vector<ResultTuple>& results) {
  IdSet ids;
  ids.reserve(results.size());
  for (const ResultTuple& res : results) ids.emplace_back(res.r_id, res.t_id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Worker threads for the threaded sweep configs; PROGXE_TEST_THREADS
/// overrides (the TSan CI job runs with 4).
int TestThreads() {
  const char* env = std::getenv("PROGXE_TEST_THREADS");
  return env != nullptr ? std::atoi(env) : 2;
}

/// Drains a stream through the abstract interface. With a budget, counts
/// the yields (0-result non-final calls); without one, a 0 return means
/// Finished.
std::vector<ResultTuple> DrainStream(ProgXeStream* stream, size_t max_results,
                                     size_t max_pairs,
                                     size_t* yields = nullptr) {
  std::vector<ResultTuple> all;
  std::vector<ResultTuple> batch;
  while (!stream->Finished()) {
    const size_t n = stream->NextBatch(max_results, max_pairs, &batch);
    EXPECT_EQ(n, batch.size());
    if (max_results != 0) {
      EXPECT_LE(n, max_results);
    }
    if (n == 0) {
      if (max_pairs == 0) break;
      if (!stream->Finished() && yields != nullptr) ++*yields;
      continue;
    }
    for (ResultTuple& res : batch) all.push_back(std::move(res));
  }
  EXPECT_TRUE(stream->Finished());
  EXPECT_EQ(stream->NextBatch(0, 0, &batch), 0u);
  return all;
}

/// Counter sum mirroring the stream's additive aggregation, restricted to
/// the fields ExpectSameStats guards.
void AddCounters(ProgXeStats* agg, const ProgXeStats& s) {
  agg->join_pairs_generated += s.join_pairs_generated;
  agg->tuples_discarded_marked += s.tuples_discarded_marked;
  agg->tuples_discarded_frontier += s.tuples_discarded_frontier;
  agg->tuples_dominated_on_insert += s.tuples_dominated_on_insert;
  agg->tuples_evicted += s.tuples_evicted;
  agg->dominance_comparisons += s.dominance_comparisons;
  agg->results_emitted += s.results_emitted;
  agg->results_emitted_early += s.results_emitted_early;
  agg->regions_processed += s.regions_processed;
  agg->regions_discarded_runtime += s.regions_discarded_runtime;
  agg->cells_flushed += s.cells_flushed;
}

/// Unsharded reference: full result set + stats through a plain session.
IdSet UnshardedReference(const Config& cfg, const ProgXeOptions& options,
                         ProgXeStats* stats) {
  auto session = ProgXeSession::Open(cfg.query(), options);
  EXPECT_TRUE(session.ok());
  std::vector<ResultTuple> all = DrainStream(session->get(), 0, 0);
  *stats = (*session)->stats();
  return SortedIds(all);
}

/// Per-shard solo runs (each shard drained alone, unsliced), counters
/// summed — the "summed per-shard counters" side of the additivity check.
ProgXeStats SumOfSoloShardRuns(const Config& cfg,
                               const ProgXeOptions& options, int num_shards) {
  ProgXeStats sum;
  for (QueryShard& shard : PlanShards(cfg.r, cfg.t, num_shards)) {
    auto session = ProgXeSession::Open(shard.Query(cfg.query()), options);
    EXPECT_TRUE(session.ok());
    DrainStream(session->get(), 0, 0);
    AddCounters(&sum, (*session)->stats());
  }
  return sum;
}

class ShardedEquivalenceSweep : public ::testing::TestWithParam<int> {};

// The acceptance criterion: for K in {1, 2, 4, 8} over seeded configs
// (incl. ties, high sigma and per-shard worker pools), the sharded stream
// emits exactly the unsharded result set with additive ProgXeStats.
TEST_P(ShardedEquivalenceSweep, ShardedSetEqualsUnsharded) {
  const int param = GetParam();
  Rng rng(0x51a2d + static_cast<uint64_t>(param));
  const Config cfg = MakeConfig(&rng, param % 5 == 0, param % 4 == 0);

  ProgXeOptions options;
  options.seed = 0xfeed + static_cast<uint64_t>(param);
  if (param % 3 == 1) options.num_threads = TestThreads();
  // Push-through stacks a second id remap (pruned -> shard -> original).
  if (param % 4 == 2) options.push_through = true;

  ProgXeStats unsharded_stats;
  const IdSet reference = UnshardedReference(cfg, options, &unsharded_stats);

  for (int num_shards : {1, 2, 4, 8}) {
    ShardOptions shard_options;
    shard_options.num_shards = num_shards;
    auto stream = OpenProgXeStream(cfg.query(), options, shard_options);
    ASSERT_TRUE(stream.ok()) << "K=" << num_shards;
    const IdSet sharded = SortedIds(DrainStream(stream->get(), 0, 0));

    // Exactly the unsharded set: nothing lost, nothing extra, no
    // duplicates (a duplicate would break the sorted-set equality).
    EXPECT_EQ(sharded, reference)
        << "K=" << num_shards << ", param=" << param;

    // Additive stats: the aggregate equals the per-shard solo counters
    // summed (slice boundaries never change engine counters). Under an
    // ambient PROGXE_FAULT_SITES soak the delivered *set* above must still
    // match exactly — that is the recovery guarantee — but replayed shard
    // incarnations redo work, so counter additivity only holds fault-free.
    if (FaultInjector::FromEnv() == nullptr) {
      ProgXeStats expected;
      if (num_shards == 1) {
        expected = unsharded_stats;
      } else {
        expected = SumOfSoloShardRuns(cfg, options, num_shards);
      }
      ExpectSameStats(expected, (*stream)->stats(), "sharded aggregate");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedEquivalenceSweep,
                         ::testing::Range(0, 12));

class ShardedBudgetSweep : public ::testing::TestWithParam<int> {};

// Budgeted, capped consumption through the interface: any slicing of the
// sharded stream delivers the same set, and small budgets actually yield.
TEST_P(ShardedBudgetSweep, BudgetedConsumptionDeliversSameSet) {
  const int param = GetParam();
  Rng rng(0xb1a5 + static_cast<uint64_t>(param));
  const Config cfg = MakeConfig(&rng, param % 3 == 0, param % 2 == 0);

  ProgXeOptions options;
  options.seed = 0xfeed;
  if (param % 2 == 1) options.num_threads = TestThreads();

  ProgXeStats unsharded_stats;
  const IdSet reference = UnshardedReference(cfg, options, &unsharded_stats);

  size_t total_yields = 0;
  for (size_t max_pairs : {size_t{16}, size_t{256}}) {
    ShardOptions shard_options;
    shard_options.num_shards = 4;
    auto stream = OpenProgXeStream(cfg.query(), options, shard_options);
    ASSERT_TRUE(stream.ok());
    size_t yields = 0;
    const IdSet sharded =
        SortedIds(DrainStream(stream->get(), 5, max_pairs, &yields));
    EXPECT_EQ(sharded, reference)
        << "max_pairs=" << max_pairs << ", param=" << param;
    total_yields += yields;
  }
  // A 16-pair budget over a non-trivial join must pause without a globally
  // final result at least once; otherwise the yield path is dead code.
  if (unsharded_stats.join_pairs_generated > 200) {
    EXPECT_GT(total_yields, 0u) << "param=" << param;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedBudgetSweep, ::testing::Range(0, 6));

// options.max_results is enforced at the merge sink: the capped sharded
// stream delivers exactly min(cap, |skyline|) distinct members of the full
// skyline (the *which* prefix is scheduling-dependent, membership is not).
TEST(ShardedStream, MaxResultsCapsAtMergeWithOnlyFinalTuples) {
  Rng rng(0xca95);
  const Config cfg = MakeConfig(&rng, false, true);

  ProgXeOptions options;
  options.seed = 0xfeed;
  ProgXeStats unsharded_stats;
  const IdSet full = UnshardedReference(cfg, options, &unsharded_stats);
  ASSERT_GT(full.size(), 3u) << "config too small to exercise the cap";

  for (size_t cap : {size_t{1}, size_t{3}, full.size() + 10}) {
    ProgXeOptions capped = options;
    capped.max_results = cap;
    ShardOptions shard_options;
    shard_options.num_shards = 4;
    auto stream = OpenProgXeStream(cfg.query(), capped, shard_options);
    ASSERT_TRUE(stream.ok());
    const IdSet got = SortedIds(DrainStream(stream->get(), 0, 128));
    EXPECT_EQ(got.size(), std::min(cap, full.size())) << "cap=" << cap;
    EXPECT_TRUE(std::adjacent_find(got.begin(), got.end()) == got.end())
        << "duplicate delivery, cap=" << cap;
    for (const auto& id : got) {
      EXPECT_TRUE(std::binary_search(full.begin(), full.end(), id))
          << "non-final tuple delivered (r=" << id.first
          << ", t=" << id.second << "), cap=" << cap;
    }
  }
}

// Every intermediate delivery is already final: a prefix of the sharded
// stream is always a subset of the full skyline, so nothing would ever
// need retracting.
TEST(ShardedStream, ProgressiveDeliveriesAreFinal) {
  Rng rng(0xf17a1);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.seed = 0xfeed;
  ProgXeStats unsharded_stats;
  const IdSet full = UnshardedReference(cfg, options, &unsharded_stats);

  ShardOptions shard_options;
  shard_options.num_shards = 4;
  auto opened = ShardedStream::Open(cfg.query(), options, shard_options);
  ASSERT_TRUE(opened.ok());
  ShardedStream* stream = opened->get();
  std::vector<ResultTuple> batch;
  size_t delivered = 0;
  while (!stream->Finished()) {
    const size_t n = stream->NextBatch(3, 64, &batch);
    delivered += n;
    for (const ResultTuple& res : batch) {
      EXPECT_TRUE(std::binary_search(full.begin(), full.end(),
                                     std::make_pair(res.r_id, res.t_id)))
          << "delivered tuple outside the final skyline";
    }
    if (n == 0 && stream->Finished()) break;
  }
  EXPECT_EQ(delivered, full.size());
  EXPECT_EQ(stream->held_candidates(), 0u);
}

// Adversarial high-K config: K far above the useful shard count, two of
// three output dimensions tied to constants (every join result collides on
// them, so the accepted set is dominated by point-equal ties) and a tiny
// join selectivity (most shards see a handful of keys, exhausting at very
// different times — maximal pressure on the release gate). The sharded set
// must still equal the unsharded skyline exactly: accepted-frontier
// pruning may only ever drop candidates a surviving entry dominates, so a
// lost non-dominated result here would be a pruning soundness bug.
TEST(ShardedStream, HighShardCountHeavyTiesTinySigma) {
  Rng rng(0xad5e);
  Config cfg;
  const int src_dims = 3;
  GeneratorOptions gen;
  gen.distribution = Distribution::kAntiCorrelated;
  gen.cardinality = 400;
  gen.num_attributes = src_dims;
  gen.join_selectivity = 0.004;  // ~a couple of rows per key class
  gen.seed = rng.Next();
  cfg.r = GenerateRelation(gen).MoveValue();
  gen.seed = rng.Next();
  cfg.t = GenerateRelation(gen).MoveValue();

  // Dimensions 0 and 1 are constants (weight-0 terms): heavy ties.
  std::vector<MapFunc> funcs;
  funcs.push_back(MapFunc({MapTerm{Side::kR, 0, 0.0}}, 1.0));
  funcs.push_back(MapFunc({MapTerm{Side::kT, 0, 0.0}}, 2.0));
  funcs.push_back(MapFunc({MapTerm{Side::kR, 1, 1.0}, MapTerm{Side::kT, 1, 1.0}},
                          0.0));
  cfg.map = MapSpec(std::move(funcs));
  cfg.pref = Preference::AllLowest(3);

  ProgXeOptions options;
  options.seed = 0xfeed;
  ProgXeStats unsharded_stats;
  const IdSet reference = UnshardedReference(cfg, options, &unsharded_stats);
  ASSERT_GT(reference.size(), 0u);

  for (int num_shards : {1, 16}) {
    ShardOptions shard_options;
    shard_options.num_shards = num_shards;
    auto opened = ShardedStream::Open(cfg.query(), options, shard_options);
    ASSERT_TRUE(opened.ok()) << "K=" << num_shards;
    ShardedStream* stream = opened->get();
    const IdSet sharded = SortedIds(DrainStream(stream, 0, 0));
    EXPECT_EQ(sharded, reference) << "K=" << num_shards;
    // Nothing may be stranded in the merge: a candidate held forever would
    // mean the frontier pruning or the release gate dropped/blocked a
    // non-dominated result.
    EXPECT_EQ(stream->held_candidates(), 0u) << "K=" << num_shards;
  }
}

// Planner invariants: shards partition both sources exactly (every row in
// exactly one shard) and group whole join-key classes.
TEST(ShardPlanner, DisjointCompleteKeyPartition) {
  Rng rng(0x9a27);
  const Config cfg = MakeConfig(&rng, false, false);
  constexpr int kShards = 4;
  const std::vector<QueryShard> shards = PlanShards(cfg.r, cfg.t, kShards);
  ASSERT_EQ(shards.size(), static_cast<size_t>(kShards));

  std::vector<int> r_owner(cfg.r.size(), -1);
  for (int s = 0; s < kShards; ++s) {
    const QueryShard& shard = shards[static_cast<size_t>(s)];
    ASSERT_EQ(shard.r.size(), shard.r_orig_ids.size());
    for (size_t i = 0; i < shard.r.size(); ++i) {
      const RowId orig = shard.r_orig_ids[i];
      EXPECT_EQ(r_owner[orig], -1) << "row in two shards";
      r_owner[orig] = s;
      // Attribute payload and key survive the move intact, and the row's
      // key hashes to this shard.
      const RowId local = static_cast<RowId>(i);
      EXPECT_EQ(shard.r.join_key(local), cfg.r.join_key(orig));
      EXPECT_EQ(ShardOfKey(shard.r.join_key(local), kShards), s);
    }
  }
  for (int owner : r_owner) EXPECT_NE(owner, -1) << "row lost";
}

TEST(ShardedStream, CloseMidStreamReleasesAndFinishes) {
  Rng rng(0xc1053);
  const Config cfg = MakeConfig(&rng, false, true);
  ProgXeOptions options;
  options.num_threads = TestThreads();  // worker teardown mid-shard
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  auto stream = OpenProgXeStream(cfg.query(), options, shard_options);
  ASSERT_TRUE(stream.ok());
  std::vector<ResultTuple> batch;
  (*stream)->NextBatch(0, /*max_pairs=*/8, &batch);
  (*stream)->Close();
  EXPECT_TRUE((*stream)->Finished());
  EXPECT_EQ((*stream)->NextBatch(0, 0, &batch), 0u);
  // Counters stay readable after Close.
  EXPECT_GT((*stream)->stats().r_rows, 0u);
}

TEST(ShardedStream, InvalidQueryFailsOpenAndEmptySourcesFinish) {
  if (FaultInjector::FromEnv() != nullptr) {
    GTEST_SKIP() << "ambient fault injection turns open-time errors into "
                    "quarantine/retry; open-failure semantics are covered "
                    "fault-free";
  }
  Config bad;
  bad.r = Relation(Schema::Anonymous(2));
  bad.t = Relation(Schema::Anonymous(2));
  bad.map = MapSpec::PairwiseSum(2);
  bad.pref = Preference::AllLowest(3);  // dimensionality mismatch
  ShardOptions shard_options;
  shard_options.num_shards = 4;
  EXPECT_TRUE(OpenProgXeStream(bad.query(), ProgXeOptions(), shard_options)
                  .status()
                  .IsInvalidArgument());

  Config empty = std::move(bad);
  empty.pref = Preference::AllLowest(2);
  auto stream =
      OpenProgXeStream(empty.query(), ProgXeOptions(), shard_options);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE((*stream)->Finished());
  std::vector<ResultTuple> batch;
  EXPECT_EQ((*stream)->NextBatch(0, 0, &batch), 0u);
}

}  // namespace
}  // namespace progxe
