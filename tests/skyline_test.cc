// Unit and property tests for the single-set skyline substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "data/generator.h"
#include "skyline/skyline.h"

namespace progxe {
namespace {

std::vector<uint32_t> Sorted(std::vector<uint32_t> v) {
  std::sort(v.begin(), v.end());
  return v;
}

TEST(SkylineReference, HandPickedCases) {
  // 2-d minimize: (1,5) (2,2) (5,1) skyline; (3,3) dominated by (2,2).
  const std::vector<double> data = {1, 5, 2, 2, 5, 1, 3, 3};
  PointView view{data.data(), 4, 2};
  EXPECT_EQ(SkylineReference(view), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(SkylineReference, DuplicatesAllSurvive) {
  const std::vector<double> data = {1, 1, 1, 1, 2, 0};
  PointView view{data.data(), 3, 2};
  EXPECT_EQ(SkylineReference(view), (std::vector<uint32_t>{0, 1, 2}));
}

TEST(SkylineReference, EmptyAndSingleton) {
  PointView empty{nullptr, 0, 3};
  EXPECT_TRUE(SkylineReference(empty).empty());
  const std::vector<double> one = {4, 2, 7};
  PointView single{one.data(), 1, 3};
  EXPECT_EQ(SkylineReference(single), (std::vector<uint32_t>{0}));
}

TEST(SkylineReference, TotalDominationChain) {
  const std::vector<double> data = {1, 1, 2, 2, 3, 3, 4, 4};
  PointView view{data.data(), 4, 2};
  EXPECT_EQ(SkylineReference(view), (std::vector<uint32_t>{0}));
}

TEST(SkylineBNL, MatchesHandCase) {
  const std::vector<double> data = {3, 3, 1, 5, 2, 2, 5, 1, 0, 9};
  PointView view{data.data(), 5, 2};
  EXPECT_EQ(Sorted(SkylineBNL(view)), Sorted(SkylineReference(view)));
}

TEST(SkylineBNL, EvictsDominatedWindowEntries) {
  // Later point (0,0) dominates everything before it.
  const std::vector<double> data = {5, 5, 3, 4, 0, 0};
  PointView view{data.data(), 3, 2};
  EXPECT_EQ(SkylineBNL(view), (std::vector<uint32_t>{2}));
}

struct SkylineCase {
  Distribution dist;
  size_t n;
  int dims;
};

class SkylineAlgorithms : public ::testing::TestWithParam<SkylineCase> {};

TEST_P(SkylineAlgorithms, BnlAndSfsMatchReference) {
  const SkylineCase& c = GetParam();
  GeneratorOptions opts;
  opts.distribution = c.dist;
  opts.cardinality = c.n;
  opts.num_attributes = c.dims;
  opts.seed = 99;
  Relation rel = GenerateRelation(opts).MoveValue();

  std::vector<double> flat;
  for (RowId i = 0; i < rel.size(); ++i) {
    auto span = rel.attrs(i);
    flat.insert(flat.end(), span.begin(), span.end());
  }
  PointView view{flat.data(), rel.size(), c.dims};

  const auto reference = Sorted(SkylineReference(view));
  EXPECT_EQ(Sorted(SkylineBNL(view)), reference);
  EXPECT_EQ(Sorted(SkylineSFS(view)), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineAlgorithms,
    ::testing::Values(SkylineCase{Distribution::kIndependent, 500, 2},
                      SkylineCase{Distribution::kIndependent, 500, 4},
                      SkylineCase{Distribution::kCorrelated, 500, 3},
                      SkylineCase{Distribution::kAntiCorrelated, 500, 3},
                      SkylineCase{Distribution::kAntiCorrelated, 300, 5},
                      SkylineCase{Distribution::kIndependent, 1, 2},
                      SkylineCase{Distribution::kCorrelated, 2000, 2}),
    [](const auto& info) {
      return std::string(DistributionName(info.param.dist)) + "_n" +
             std::to_string(info.param.n) + "_d" +
             std::to_string(info.param.dims);
    });

// SFS performs no more comparisons than BNL on anti-correlated data (its
// design goal: no window purging, dominators first).
TEST(SkylineSFS, FewerComparisonsThanBnlOnAntiCorrelated) {
  GeneratorOptions opts;
  opts.distribution = Distribution::kAntiCorrelated;
  opts.cardinality = 2000;
  opts.num_attributes = 3;
  Relation rel = GenerateRelation(opts).MoveValue();
  std::vector<double> flat;
  for (RowId i = 0; i < rel.size(); ++i) {
    auto span = rel.attrs(i);
    flat.insert(flat.end(), span.begin(), span.end());
  }
  PointView view{flat.data(), rel.size(), 3};
  DomCounter bnl_counter;
  DomCounter sfs_counter;
  SkylineBNL(view, &bnl_counter);
  SkylineSFS(view, &sfs_counter);
  EXPECT_LE(sfs_counter.comparisons, bnl_counter.comparisons);
}

TEST(SkylinePreference, HighestDirections) {
  // Maximize both dims: (5,5) dominates everything else.
  const std::vector<double> data = {5, 5, 1, 1, 4, 4};
  PointView view{data.data(), 3, 2};
  auto sky = Skyline(view, Preference::AllHighest(2));
  EXPECT_EQ(sky, (std::vector<uint32_t>{0}));
}

TEST(SkylinePreference, MixedDirections) {
  // Minimize dim0, maximize dim1: (1,9) dominates (2,8); (0,0) incomparable
  // to (1,9) (better dim0, worse dim1).
  const std::vector<double> data = {1, 9, 2, 8, 0, 0};
  PointView view{data.data(), 3, 2};
  auto sky = Skyline(
      view, Preference({Direction::kLowest, Direction::kHighest}));
  EXPECT_EQ(Sorted(sky), (std::vector<uint32_t>{0, 2}));
}

TEST(SkylineWindow, InsertSemantics) {
  SkylineWindow window(2);
  const double a[] = {2.0, 2.0};
  const double b[] = {1.0, 3.0};
  const double c[] = {3.0, 3.0};  // dominated by a
  const double d[] = {0.0, 0.0};  // dominates all
  EXPECT_TRUE(window.Insert(a, 1));
  EXPECT_TRUE(window.Insert(b, 2));
  EXPECT_FALSE(window.Insert(c, 3));
  EXPECT_EQ(window.size(), 2u);
  EXPECT_TRUE(window.Insert(d, 4));
  EXPECT_EQ(window.size(), 1u);
  EXPECT_EQ(window.payload(0), 4u);
}

TEST(SkylineWindow, EqualPointsCoexist) {
  SkylineWindow window(2);
  const double p[] = {1.0, 1.0};
  EXPECT_TRUE(window.Insert(p, 1));
  EXPECT_TRUE(window.Insert(p, 2));
  EXPECT_EQ(window.size(), 2u);
}

// Property: the window after inserting any permutation equals the skyline.
TEST(SkylineWindowProperty, OrderIndependent) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 40;
    std::vector<double> pts(n * 2);
    for (double& v : pts) v = static_cast<double>(rng.NextBelow(8));
    PointView view{pts.data(), n, 2};
    std::set<uint64_t> expected;
    for (uint32_t i : SkylineReference(view)) {
      // Points are dedupable only by payload; collect multiset of values.
      expected.insert((static_cast<uint64_t>(pts[i * 2]) << 32) |
                      static_cast<uint64_t>(pts[i * 2 + 1]));
    }
    std::vector<uint32_t> order(n);
    std::iota(order.begin(), order.end(), 0u);
    rng.Shuffle(&order);
    SkylineWindow window(2);
    for (uint32_t i : order) window.Insert(view.point(i), i);
    std::set<uint64_t> got;
    for (size_t i = 0; i < window.size(); ++i) {
      got.insert((static_cast<uint64_t>(window.point(i)[0]) << 32) |
                 static_cast<uint64_t>(window.point(i)[1]));
    }
    EXPECT_EQ(got, expected);
  }
}

}  // namespace
}  // namespace progxe
