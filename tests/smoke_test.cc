// End-to-end smoke test: every algorithm returns the same final skyline on a
// small workload.
#include <gtest/gtest.h>

#include "harness/experiment.h"

namespace progxe {
namespace {

TEST(Smoke, AllAlgorithmsAgree) {
  WorkloadParams params;
  params.distribution = Distribution::kIndependent;
  params.cardinality = 500;
  params.dims = 3;
  params.sigma = 0.01;
  auto workload = Workload::Make(params);
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  auto reference = RunAlgorithm(Algo::kJfSl, *workload);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->results.size(), 0u);
  auto ref_ids = CanonicalIdPairs(reference->results);

  for (Algo algo : AllAlgos()) {
    SCOPED_TRACE(AlgoName(algo));
    auto run = RunAlgorithm(algo, *workload);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_EQ(CanonicalIdPairs(run->results), ref_ids);
  }
}

}  // namespace
}  // namespace progxe
