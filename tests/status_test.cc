// Unit tests for the Status / Result error-handling substrate.
#include <gtest/gtest.h>

#include "common/status.h"

namespace progxe {
namespace {

TEST(Status, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, FactoryConstructorsCarryCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "Invalid argument: bad k");

  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
}

TEST(Status, CopyIsCheapAndShared) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(b.message(), "boom");
  EXPECT_EQ(b.code(), StatusCode::kInternal);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "Not found");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "Resource exhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "Cancelled");
}

TEST(Status, RetryableFactories) {
  Status st = Status::Unavailable("shard down");
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_EQ(st.ToString(), "Unavailable: shard down");
  EXPECT_TRUE(st.IsRetryable());

  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::IOError("x").IsRetryable());

  // Cancellation is a decision, not a transient: retrying it would undo the
  // caller's intent.
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_FALSE(Status::Cancelled("x").IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
}

TEST(Status, TokenRoundTripsEveryCode) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kInvalidArgument,
      StatusCode::kNotFound,     StatusCode::kAlreadyExists,
      StatusCode::kOutOfRange,   StatusCode::kNotImplemented,
      StatusCode::kInternal,     StatusCode::kIOError,
      StatusCode::kUnavailable,  StatusCode::kResourceExhausted,
      StatusCode::kCancelled,
  };
  for (StatusCode code : codes) {
    StatusCode parsed;
    // The snake_case token round-trips...
    ASSERT_TRUE(StatusCodeFromName(StatusCodeToken(code), &parsed))
        << StatusCodeToken(code);
    EXPECT_EQ(parsed, code);
    // ...and so does the display name.
    ASSERT_TRUE(StatusCodeFromName(StatusCodeName(code), &parsed))
        << StatusCodeName(code);
    EXPECT_EQ(parsed, code);
  }
  StatusCode parsed;
  EXPECT_FALSE(StatusCodeFromName("definitely_not_a_code", &parsed));
  EXPECT_FALSE(StatusCodeFromName("", &parsed));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(Result, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

Result<int> Doubler(Result<int> in) {
  PROGXE_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(Result, AssignOrReturnMacroPropagatesErrors) {
  EXPECT_EQ(Doubler(21).value(), 42);
  Result<int> err = Doubler(Status::Internal("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInternal());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int v) {
  PROGXE_RETURN_NOT_OK(FailIfNegative(v));
  return Status::OK();
}

TEST(Status, ReturnNotOkMacro) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsOutOfRange());
}

}  // namespace
}  // namespace progxe
