#!/usr/bin/env python3
"""CI gate on the sharded merge sink's dominance-comparison counter and the
disabled fault-injection hook's overhead.

The merge sink's work is measured by a deterministic counter
(`merge_comparisons` in the `bench_sharded` JSON), so unlike a timing
threshold this gate is stable across runners: a regression back toward the
flat O(accepted x arrivals) scan multiplies the counter by orders of
magnitude and trips the budget regardless of machine speed.

`fault_hook_ns_per_call` (when present in the JSON) is additionally held
under a per-call nanosecond budget: the disabled MaybeInjectFault hook is
contractually one predicted branch, and a regression that consults the rule
table on the hot path costs 10-100x, far above runner jitter.
`trace_hook_ns_per_call` is gated the same way with its own budget: a
disabled TraceSpan must stay one predicted branch, never a thread-local
ring-buffer append.

The cross-query reuse burst (the `reuse` key, written by bench_multiquery)
is gated on two machine-independent booleans: the warm run must have hit
the prepared-state cache at least once (`prepare_skipped >= 1` — zero
means fingerprinting broke and every refinement silently re-prepares) and
the warm children's result hashes must equal the cold run's
(`results_match` — reuse must never change what a query returns).

The distributed loopback run (the `distributed` key, written by
bench_distributed) is gated on its own `results_match`: a K-shard query
served by remote worker processes must deliver exactly the in-process
result set — distribution is a placement decision, never a results
decision. Its nested `recovery` key (a worker killed mid-stream, shards
recovering via checkpointed retry) is gated the same way, plus
`replay_pairs_saved > 0`: a resume that saves nothing means checkpoints
are not actually shipping and every retry replays from scratch.

Accepts a bare bench_sharded JSON ({"runs": [...]}), a full
BENCH_progxe.json (takes its "sharded" key, plus "reuse"/"distributed"
when present), or a bare bench_multiquery JSON (no sharded runs — only
the "reuse" gate applies; missing sharded data is an error only when
there is no reuse section either).

Usage: check_merge_budget.py <json> [--shards=4] [--budget=200000]
                                    [--hook_budget_ns=15]
                                    [--trace_budget_ns=15]
"""

import json
import sys


def main(argv):
    path = None
    shards = 4
    budget = 200000
    hook_budget_ns = 15.0
    trace_budget_ns = 15.0
    for arg in argv[1:]:
        if arg.startswith("--shards="):
            shards = int(arg.split("=", 1)[1])
        elif arg.startswith("--budget="):
            budget = int(arg.split("=", 1)[1])
        elif arg.startswith("--hook_budget_ns="):
            hook_budget_ns = float(arg.split("=", 1)[1])
        elif arg.startswith("--trace_budget_ns="):
            trace_budget_ns = float(arg.split("=", 1)[1])
        elif path is None:
            path = arg
        else:
            raise SystemExit(f"unexpected argument: {arg}")
    if path is None:
        raise SystemExit(__doc__)

    with open(path) as f:
        doc = json.load(f)
    data = doc
    if "runs" not in data:
        data = data.get("sharded", {})
    runs = {run["shards"]: run
            for run in data.get("runs", []) if "shards" in run}
    reuse = doc.get("reuse")
    if reuse is None and isinstance(doc.get("multiquery"), dict):
        reuse = doc["multiquery"].get("reuse")
    distributed = doc.get("distributed")
    if distributed is None and doc.get("bench") == "distributed":
        distributed = doc  # bare bench_distributed JSON

    if shards in runs:
        run = runs[shards]
        cmps = run["merge_comparisons"]
        print(f"K={shards}: merge_comparisons={cmps} budget={budget}")
        if cmps > budget:
            raise SystemExit(
                f"FAIL: merge_comparisons at K={shards} exceeded the budget "
                f"({cmps} > {budget}) — the merge sink is scanning instead "
                f"of using the dominance index")
    elif reuse is None and distributed is None:
        raise SystemExit(f"{path}: no K={shards} run recorded")

    hook_ns = data.get("fault_hook_ns_per_call")
    if hook_ns is not None:
        print(f"fault_hook_ns_per_call={hook_ns} budget={hook_budget_ns}")
        if hook_ns > hook_budget_ns:
            raise SystemExit(
                f"FAIL: the disabled fault-injection hook costs {hook_ns}ns "
                f"per call (> {hook_budget_ns}ns) — it must stay a single "
                f"predicted branch when no injector is installed")

    trace_ns = data.get("trace_hook_ns_per_call")
    if trace_ns is not None:
        print(f"trace_hook_ns_per_call={trace_ns} budget={trace_budget_ns}")
        if trace_ns > trace_budget_ns:
            raise SystemExit(
                f"FAIL: a disabled TraceSpan costs {trace_ns}ns per call "
                f"(> {trace_budget_ns}ns) — with tracing off it must stay a "
                f"single predicted branch, not touch the ring buffer")

    if isinstance(distributed, dict):
        match = distributed.get("results_match", False)
        retries = distributed.get("retries", 0)
        print(f"distributed: results_match={match} retries={retries}")
        if not match:
            raise SystemExit(
                "FAIL: the distributed loopback run delivered a different "
                "result set than the in-process run — remote shard workers "
                "must be bit-identical to local execution")
        recovery = distributed.get("recovery")
        if isinstance(recovery, dict):
            rec_match = recovery.get("results_match", False)
            saved = recovery.get("replay_pairs_saved", 0)
            print(f"recovery: results_match={rec_match} "
                  f"replay_pairs_saved={saved}")
            if not rec_match:
                raise SystemExit(
                    "FAIL: a worker-kill recovery run delivered a different "
                    "result set than the in-process run — checkpointed "
                    "resume must never change what a query returns")
            if saved <= 0:
                raise SystemExit(
                    "FAIL: the checkpointed recovery run saved no replay "
                    "pairs (replay_pairs_saved <= 0) — resumes are "
                    "replaying from scratch, the checkpoint path is dead")

    if reuse is not None:
        skipped = reuse.get("prepare_skipped", 0)
        match = reuse.get("results_match", False)
        print(f"reuse: prepare_skipped={skipped} results_match={match}")
        if skipped < 1:
            raise SystemExit(
                "FAIL: the warm refinement burst never hit the "
                "prepared-state cache (prepare_skipped < 1) — every "
                "refinement is silently re-running the prepare phase")
        if not match:
            raise SystemExit(
                "FAIL: the warm refinement burst served a different result "
                "set than the cold run — cross-query reuse must never "
                "change query results")
    print("OK")


if __name__ == "__main__":
    main(sys.argv)
