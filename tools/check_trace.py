#!/usr/bin/env python3
"""CI validator for ProgXe span traces (Chrome trace_event JSON).

Checks that a `--trace_out` file is structurally valid — something Perfetto
or chrome://tracing will actually load — and, with --require, that the run
exercised the expected subsystems:

  * top level is an object with a `traceEvents` array and a
    `displayTimeUnit`;
  * every event carries a string `name`, a phase `ph` in {X, i, M}, a
    numeric `ts`, and numeric `pid`/`tid`;
  * complete spans (ph=X) carry a non-negative numeric `dur`;
  * instants (ph=i) carry a scope `s`;
  * timestamps are non-negative (the recorder uses a per-run monotonic
    origin);
  * `otherData.dropped_events` (when present) is a non-negative integer;
  * every category named in --require appears on at least one span/instant.

Usage: check_trace.py <trace.json> [--require=prepare,region,sched,shard]
                                   [--min_events=1]
"""

import json
import sys

VALID_PHASES = {"X", "i", "M"}


def fail(msg):
    raise SystemExit(f"FAIL: {msg}")


def main(argv):
    path = None
    required = []
    min_events = 1
    for arg in argv[1:]:
        if arg.startswith("--require="):
            required = [c for c in arg.split("=", 1)[1].split(",") if c]
        elif arg.startswith("--min_events="):
            min_events = int(arg.split("=", 1)[1])
        elif path is None:
            path = arg
        else:
            raise SystemExit(f"unexpected argument: {arg}")
    if path is None:
        raise SystemExit(__doc__)

    with open(path) as f:
        doc = json.load(f)

    if not isinstance(doc, dict):
        fail("top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents array")
    if "displayTimeUnit" not in doc:
        fail("missing displayTimeUnit")

    seen_cats = set()
    spans = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"{where}: missing/empty name")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{where}: bad phase {ph!r} (want one of {VALID_PHASES})")
        if ph == "M":
            continue  # metadata (thread_name): no timestamp contract
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            fail(f"{where}: bad ts {ts!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where}: bad {key} {ev.get(key)!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: span without a valid dur ({dur!r})")
            spans += 1
        elif ph == "i" and "s" not in ev:
            fail(f"{where}: instant without a scope")
        cat = ev.get("cat")
        if isinstance(cat, str) and cat:
            seen_cats.add(cat)

    dropped = 0
    other = doc.get("otherData", {})
    if other:
        dropped = other.get("dropped_events", 0)
        if not isinstance(dropped, int) or dropped < 0:
            fail(f"bad otherData.dropped_events: {dropped!r}")

    real = [ev for ev in events if ev.get("ph") != "M"]
    if len(real) < min_events:
        fail(f"only {len(real)} events recorded (< {min_events})")

    missing = [c for c in required if c not in seen_cats]
    if missing:
        fail(f"required categories absent from the trace: "
             f"{','.join(missing)} (saw: {','.join(sorted(seen_cats))})")

    print(f"OK: {len(real)} events ({spans} spans), "
          f"{dropped} dropped, categories: {','.join(sorted(seen_cats))}")


if __name__ == "__main__":
    main(sys.argv)
