#!/usr/bin/env bash
# Loopback multi-process distributed smoke: two real shard-worker processes
# (progxe_server --worker) serve a K=4 query submitted by progxe_cli, and
# the delivered result set's canonical hash must equal the in-process run's
# — the end-to-end form of the bit-identity contract (wire serde, worker
# pump slicing, coordinator merge and watermark release all on the path).
#
# Usage: tools/distributed_smoke.sh [build_dir]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
server="$build_dir/progxe_server"
cli="$build_dir/progxe_cli"

[[ -x "$server" && -x "$cli" ]] || {
  echo "build progxe_server and progxe_cli first (in $build_dir)" >&2
  exit 2
}

workdir="$(mktemp -d)"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# Start two workers on ephemeral ports and read the announced ports back.
endpoints=()
for i in 1 2; do
  "$server" --worker --listen=0 </dev/null >"$workdir/worker$i.out" 2>/dev/null &
  pids+=($!)
  port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/^worker listening port=//p' "$workdir/worker$i.out" | head -1)"
    [[ -n "$port" ]] && break
    sleep 0.05
  done
  [[ -n "$port" ]] || { echo "worker $i never announced its port" >&2; exit 1; }
  endpoints+=("127.0.0.1:$port")
done
workers="$(IFS=,; echo "${endpoints[*]}")"
echo "workers: $workers"

flags=(--dist=anticorrelated --n=4000 --dims=4 --sigma=0.002 --seed=7
       --shards=4 --result_hash --series=0)

local_hash="$("$cli" "${flags[@]}" | sed -n 's/^result_hash=\([0-9a-f]*\).*/\1/p')"
dist_hash="$("$cli" "${flags[@]}" --shard_workers="$workers" \
             | sed -n 's/^result_hash=\([0-9a-f]*\).*/\1/p')"

echo "in-process  result_hash=$local_hash"
echo "distributed result_hash=$dist_hash"
[[ -n "$local_hash" && -n "$dist_hash" ]] || {
  echo "FAIL: missing result hash output" >&2
  exit 1
}
if [[ "$local_hash" != "$dist_hash" ]]; then
  echo "FAIL: distributed run diverged from the in-process run" >&2
  exit 1
fi

# Worker-kill leg: kill worker 1 mid-setup and rerun against both endpoints
# (one now dead). Endpoint rotation must recover every shard on the
# survivor and the hash must still match.
kill "${pids[0]}" 2>/dev/null || true
wait "${pids[0]}" 2>/dev/null || true
recovered_hash="$("$cli" "${flags[@]}" --shard_workers="$workers" \
                  --max_retries=8 --retry_backoff_ms=1 \
                  | sed -n 's/^result_hash=\([0-9a-f]*\).*/\1/p')"
echo "post-kill   result_hash=$recovered_hash"
if [[ "$local_hash" != "$recovered_hash" ]]; then
  echo "FAIL: recovery after worker death changed the result set" >&2
  exit 1
fi

echo "OK distributed smoke (hash $local_hash, worker-kill recovery green)"
