// progxe_cli — run any algorithm on a synthetic SkyMapJoin workload from
// the command line and inspect progressiveness interactively.
//
//   $ progxe_cli --dist=anti --n=20000 --dims=4 --sigma=0.001 --algo=ProgXe
//   $ progxe_cli --algo=all --csv=series.csv
//
// Flags:
//   --dist=independent|correlated|anticorrelated   (default independent)
//   --n=<N>            source cardinality            (default 10000)
//   --dims=<d>         skyline dimensions            (default 4)
//   --sigma=<s>        join selectivity              (default 0.001)
//   --seed=<s>         workload seed                 (default 42)
//   --algo=<name|all>  ProgXe, ProgXe+, ProgXe-NoOrder, ProgXe+-NoOrder,
//                      JF-SL, JF-SL+, SSMJ, SAJ, all  (default ProgXe)
//   --kd               use the kd-tree partitioner for ProgXe variants
//   --num_threads=<w>  join->map worker threads for ProgXe variants
//                      (default 1; results are identical at any count)
//   --shards=<K>       hash-partition the join across K engine shards
//                      (ProgXe variants; default 1 = unsharded, the result
//                      set is identical at any K)
//   --shard_workers=host:port,...  run the shards on remote worker
//                      processes (progxe_server --worker) instead of
//                      in-process sessions; shard i's incarnation n dials
//                      workers[(i + n) % len]. Results stay bit-identical
//                      to the in-process run. (--workers=<n> below is the
//                      unrelated scheduler thread count.)
//   --result_hash      print "result_hash=<hex>" — an order-insensitive
//                      FNV-1a hash of the canonical (r_id, t_id) result
//                      pairs, for comparing runs across processes
//   --csv=<path>       append per-emission series rows to a CSV file
//   --series=<k>       print at most k series samples (default 10)
//   --trace_out=<path> record a span trace of the whole run and write it
//                      as Chrome trace_event JSON (load in Perfetto /
//                      chrome://tracing); works for single runs and
//                      multi-query serving alike
//
// Fault tolerance (ProgXe variants; see common/fault_injection.h):
//   --faults=<spec>        inject deterministic faults, e.g.
//                          "shard.open:p=1,max=2" fails the first two
//                          shard opens (then recovery retries them)
//   --fault_seed=<s>       seed for probabilistic fault rules (default 0)
//   --max_retries=<n>      consecutive per-shard failures tolerated
//                          (default 2)
//   --retry_backoff_ms=<ms> base shard re-open backoff (default 1)
//   --allow_partial        complete with reduced coverage instead of
//                          failing when a shard exhausts its retries
//
// Multi-query serving (ProgXe variants only): with --queries=N > 1 the
// workloads (seeds seed..seed+N-1) are served concurrently through the
// QueryScheduler and per-query stats are printed as each one finishes.
//   --queries=<N>         number of concurrent queries     (default 1)
//   --workers=<n>         scheduler worker threads         (default 2)
//   --budget=<pairs>      join pairs per NextBatch slice   (default 4096)
//   --policy=rr|wf        round-robin | weighted-fair      (default rr)
//   --max_concurrent=<n>  admission slots, 0 = unbounded   (default 0)
//   --reuse               cross-query reuse demo: all N queries serve ONE
//                         shared workload; query 0 runs first and retains
//                         its results, queries 1..N-1 are then submitted
//                         as refinements of it (the prepared-state cache
//                         skips their prepare phase and their region loops
//                         are seeded from query 0's accepted frontier).
//                         Prints the scheduler's cache counters at the end.
// --shards also applies here: each query is served as one sharded stream
// behind its QueryHandle.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/csv_writer.h"
#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "harness/experiment.h"
#include "net/worker_pool.h"
#include "obs/trace.h"
#include "service/scheduler.h"

using namespace progxe;

namespace {

struct CliArgs {
  Distribution dist = Distribution::kIndependent;
  size_t n = 10000;
  int dims = 4;
  double sigma = 0.001;
  uint64_t seed = 42;
  std::string algo = "ProgXe";
  bool kd = false;
  int num_threads = 1;
  int shards = 1;
  std::vector<std::string> shard_workers;
  bool result_hash = false;
  std::string csv_path;
  std::string trace_path;
  int series_samples = 10;

  // Fault tolerance.
  std::string faults;
  uint64_t fault_seed = 0;
  int max_retries = 2;
  int retry_backoff_ms = 1;
  bool allow_partial = false;

  // Multi-query serving.
  size_t queries = 1;
  int workers = 2;
  size_t budget = 4096;
  size_t max_concurrent = 0;
  FairnessPolicy policy = FairnessPolicy::kRoundRobin;
  bool reuse = false;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--dist=")) {
      auto dist = ParseDistribution(v);
      if (!dist.ok()) {
        std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
        return false;
      }
      args->dist = *dist;
    } else if (const char* v = value("--n=")) {
      args->n = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--dims=")) {
      args->dims = std::atoi(v);
    } else if (const char* v = value("--sigma=")) {
      args->sigma = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--algo=")) {
      args->algo = v;
    } else if (const char* v = value("--csv=")) {
      args->csv_path = v;
    } else if (const char* v = value("--trace_out=")) {
      args->trace_path = v;
    } else if (const char* v = value("--num_threads=")) {
      args->num_threads = std::atoi(v);
      if (args->num_threads < 1) {
        std::fprintf(stderr, "--num_threads must be >= 1\n");
        return false;
      }
    } else if (const char* v = value("--shards=")) {
      args->shards = std::atoi(v);
      if (args->shards < 1) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return false;
      }
    } else if (const char* v = value("--shard_workers=")) {
      auto list = ParseWorkerList(v);
      if (!list.ok()) {
        std::fprintf(stderr, "--shard_workers: %s\n",
                     list.status().ToString().c_str());
        return false;
      }
      args->shard_workers = list.MoveValue();
      if (args->shard_workers.empty()) {
        std::fprintf(stderr,
                     "--shard_workers needs at least one host:port\n");
        return false;
      }
    } else if (std::strcmp(arg, "--result_hash") == 0) {
      args->result_hash = true;
    } else if (const char* v = value("--series=")) {
      args->series_samples = std::atoi(v);
    } else if (const char* v = value("--faults=")) {
      args->faults = v;
    } else if (const char* v = value("--fault_seed=")) {
      args->fault_seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--max_retries=")) {
      args->max_retries = std::atoi(v);
      if (args->max_retries < 0) {
        std::fprintf(stderr, "--max_retries must be >= 0\n");
        return false;
      }
    } else if (const char* v = value("--retry_backoff_ms=")) {
      args->retry_backoff_ms = std::atoi(v);
      if (args->retry_backoff_ms < 0) {
        std::fprintf(stderr, "--retry_backoff_ms must be >= 0\n");
        return false;
      }
    } else if (std::strcmp(arg, "--allow_partial") == 0) {
      args->allow_partial = true;
    } else if (const char* v = value("--queries=")) {
      args->queries = static_cast<size_t>(std::atoll(v));
      if (args->queries < 1) {
        std::fprintf(stderr, "--queries must be >= 1\n");
        return false;
      }
    } else if (const char* v = value("--workers=")) {
      args->workers = std::atoi(v);
    } else if (const char* v = value("--budget=")) {
      args->budget = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--max_concurrent=")) {
      args->max_concurrent = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--policy=")) {
      if (!FairnessPolicyFromName(v, &args->policy)) {
        std::fprintf(stderr, "--policy must be rr or wf\n");
        return false;
      }
    } else if (std::strcmp(arg, "--reuse") == 0) {
      args->reuse = true;
    } else if (std::strcmp(arg, "--kd") == 0) {
      args->kd = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("see the header comment of tools/progxe_cli.cc\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return false;
    }
  }
  return true;
}

/// FNV-1a over the canonical (r_id, t_id) pairs. Order-insensitive by
/// construction — CanonicalIdPairs sorts first — so two runs agree iff
/// their result *sets* agree, which is what the distributed smoke compares
/// across processes.
uint64_t ResultHash(const std::vector<ResultTuple>& results) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& pair : CanonicalIdPairs(results)) {
    mix(static_cast<uint64_t>(pair.first));
    mix(static_cast<uint64_t>(pair.second));
  }
  return h;
}

/// Compiles the --faults/--max_retries/--allow_partial flags into the
/// engine and shard options. False (with a message) on a malformed spec.
bool ApplyFaultArgs(const CliArgs& args, ProgXeOptions* tuning,
                    ShardOptions* shards) {
  shards->max_retries = args.max_retries;
  shards->retry_backoff = std::chrono::milliseconds(args.retry_backoff_ms);
  shards->allow_partial = args.allow_partial;
  shards->workers = args.shard_workers;
  if (args.faults.empty()) return true;
  auto injector = FaultInjector::Parse(args.faults, args.fault_seed);
  if (!injector.ok()) {
    std::fprintf(stderr, "--faults: %s\n",
                 injector.status().ToString().c_str());
    return false;
  }
  tuning->faults = injector.MoveValue();
  return true;
}

int RunOne(Algo algo, const Workload& workload, const CliArgs& args,
           CsvWriter* csv) {
  ProgXeOptions tuning;
  if (args.kd) tuning.partitioning = PartitioningScheme::kKdTree;
  tuning.num_threads = args.num_threads;
  ShardOptions shards;
  shards.num_shards = args.shards;
  if (!ApplyFaultArgs(args, &tuning, &shards)) return 2;
  if ((args.shards > 1 || !args.shard_workers.empty()) &&
      !IsProgXeVariant(algo)) {
    // Keeps --algo=all --shards=K usable: ProgXe variants run sharded,
    // baselines (which have no shard path) run as-is.
    std::fprintf(stderr, "%s: --shards/--shard_workers apply to ProgXe "
                 "variants only; running unsharded\n",
                 AlgoName(algo));
    shards.num_shards = 1;
    shards.workers.clear();
  }
  auto run = RunAlgorithm(algo, workload, tuning, shards);
  if (!run.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("%-20s results=%-8zu t_first=%.6fs t_50%%=%.6fs total=%.6fs "
              "cmps=%llu pairs=%llu\n",
              AlgoName(algo), run->metrics.total_results,
              run->metrics.time_to_first, run->metrics.time_to_50pct,
              run->metrics.total_time,
              static_cast<unsigned long long>(run->dominance_comparisons),
              static_cast<unsigned long long>(run->join_pairs));
  if (run->coverage.retries > 0 || !run->coverage.complete()) {
    std::printf("  coverage: %s%s\n", run->coverage.ToString().c_str(),
                run->coverage.complete() ? "" : " (PARTIAL result set)");
  }
  if (args.result_hash) {
    std::printf("result_hash=%016llx results=%zu\n",
                static_cast<unsigned long long>(ResultHash(run->results)),
                run->results.size());
  }
  if (args.series_samples > 0 && !run->series.empty()) {
    std::vector<SeriesPoint> pts = run->series;
    const size_t max_pts = static_cast<size_t>(args.series_samples);
    if (pts.size() > max_pts) {
      std::vector<SeriesPoint> sampled;
      const double step = static_cast<double>(pts.size() - 1) /
                          static_cast<double>(max_pts - 1);
      for (size_t i = 0; i < max_pts; ++i) {
        sampled.push_back(
            pts[std::min(static_cast<size_t>(step * static_cast<double>(i)),
                         pts.size() - 1)]);
      }
      sampled.back() = pts.back();
      pts = std::move(sampled);
    }
    std::printf("  series:");
    for (const SeriesPoint& p : pts) {
      std::printf(" %.4f:%zu", p.t_sec, p.count);
    }
    std::printf("\n");
  }
  if (csv != nullptr) {
    for (const SeriesPoint& p : run->series) {
      csv->WriteValues(std::string(AlgoName(algo)),
                       std::string(DistributionName(args.dist)), args.n,
                       args.dims, args.sigma, p.t_sec, p.count);
    }
  }
  return 0;
}

/// The workload the CLI flags describe; multi-query serving offsets the
/// seed per query.
WorkloadParams MakeParams(const CliArgs& args, size_t seed_offset) {
  WorkloadParams params;
  params.distribution = args.dist;
  params.cardinality = args.n;
  params.dims = args.dims;
  params.sigma = args.sigma;
  params.seed = args.seed + seed_offset;
  return params;
}

/// Serves `args.queries` workloads (seeds seed..seed+N-1) concurrently
/// through the QueryScheduler, printing per-query progressive stats.
int RunMultiQuery(Algo algo, const CliArgs& args) {
  struct CliSink : QuerySink {
    size_t index = 0;
    const Stopwatch* watch = nullptr;
    double t_first = 0.0;
    double t_done = 0.0;
    size_t batches = 0;
    size_t results = 0;
    ProgXeStats stats;
    QueryState final_state = QueryState::kQueued;
    void OnBatch(const std::vector<ResultTuple>& batch) override {
      if (results == 0) t_first = watch->ElapsedSeconds();
      results += batch.size();
      ++batches;
    }
    void OnDone(QueryState state, const Status& status,
                const ProgXeStats& final_stats) override {
      t_done = watch->ElapsedSeconds();
      final_state = state;
      stats = final_stats;
      if (!status.ok()) {
        std::fprintf(stderr, "query %zu failed: %s\n", index,
                     status.ToString().c_str());
      }
    }
  };

  ProgXeOptions tuning;
  if (args.kd) tuning.partitioning = PartitioningScheme::kKdTree;
  tuning.num_threads = args.num_threads;
  SubmitOptions submit;
  submit.shards.num_shards = args.shards;
  if (!ApplyFaultArgs(args, &tuning, &submit.shards)) return 2;

  // --reuse serves one shared workload (pointer-identical sources are what
  // let the prepared-state cache and frontier seeding engage); otherwise
  // each query gets its own seed-offset workload.
  const size_t distinct_workloads = args.reuse ? 1 : args.queries;
  std::vector<std::unique_ptr<Workload>> workloads;
  for (size_t i = 0; i < distinct_workloads; ++i) {
    auto workload = Workload::Make(MakeParams(args, i));
    if (!workload.ok()) {
      std::fprintf(stderr, "workload %zu: %s\n", i,
                   workload.status().ToString().c_str());
      return 1;
    }
    workloads.push_back(std::make_unique<Workload>(workload.MoveValue()));
  }

  ServiceOptions sopts;
  sopts.num_workers = args.workers;
  sopts.batch_budget = args.budget;
  sopts.max_concurrent = args.max_concurrent;
  sopts.policy = args.policy;

  std::printf("serving %zu x %s: workers=%d budget=%zu policy=%s shards=%d\n",
              args.queries, AlgoName(algo), sopts.num_workers,
              sopts.batch_budget, FairnessPolicyName(sopts.policy),
              args.shards);

  std::vector<CliSink> sinks(args.queries);
  std::vector<QueryHandle> handles(args.queries);
  Stopwatch watch;
  QueryScheduler scheduler(sopts);
  for (size_t i = 0; i < args.queries; ++i) {
    sinks[i].index = i;
    sinks[i].watch = &watch;
    const Workload& workload = args.reuse ? *workloads[0] : *workloads[i];
    SubmitOptions qsubmit = submit;
    if (args.reuse) {
      if (i == 0) {
        qsubmit.retain_results = true;
      } else {
        qsubmit.parent = handles[0];
        qsubmit.seed_from_parent = true;
      }
    }
    auto handle = scheduler.Submit(workload.query(),
                                   OptionsForAlgo(algo, tuning), &sinks[i],
                                   qsubmit);
    if (!handle.ok()) {
      std::fprintf(stderr, "submit %zu: %s\n", i,
                   handle.status().ToString().c_str());
      return 1;
    }
    handles[i] = *handle;
    // Let the parent finish before submitting refinements: children seed
    // from a frozen frontier (a still-running parent would just mean an
    // unseeded child).
    if (args.reuse && i == 0) handles[0].Wait();
  }
  scheduler.Drain();
  const double makespan = watch.ElapsedSeconds();

  int rc = 0;
  size_t total_results = 0;
  double worst_first = 0.0;
  for (const CliSink& sink : sinks) {
    std::printf("  query=%-3zu seed=%-6llu state=%-9s results=%-7zu "
                "batches=%-5zu t_first=%.6fs t_done=%.6fs pairs=%llu "
                "cmps=%llu\n",
                sink.index,
                static_cast<unsigned long long>(
                    args.seed + (args.reuse ? 0 : sink.index)),
                QueryStateName(sink.final_state), sink.results, sink.batches,
                sink.t_first, sink.t_done,
                static_cast<unsigned long long>(
                    sink.stats.join_pairs_generated),
                static_cast<unsigned long long>(
                    sink.stats.dominance_comparisons));
    const ShardCoverage& coverage = handles[sink.index].coverage();
    if (coverage.retries > 0 || !coverage.complete()) {
      std::printf("    coverage: %s\n", coverage.ToString().c_str());
    }
    // A partial completion is a success exactly when the caller opted into
    // degraded coverage.
    const bool ok_state =
        sink.final_state == QueryState::kFinished ||
        (args.allow_partial && sink.final_state == QueryState::kPartial);
    if (!ok_state) rc = 1;
    total_results += sink.results;
    if (sink.t_first > worst_first) worst_first = sink.t_first;
  }
  std::printf("aggregate: results=%zu makespan=%.6fs worst_t_first=%.6fs\n",
              total_results, makespan, worst_first);
  if (args.reuse) {
    const SchedulerStats sstats = scheduler.stats();
    std::printf("reuse: prepare_hits=%llu prepare_misses=%llu "
                "prepare_evictions=%llu cache_entries=%zu cache_bytes=%zu\n",
                static_cast<unsigned long long>(sstats.prepare_hits),
                static_cast<unsigned long long>(sstats.prepare_misses),
                static_cast<unsigned long long>(sstats.prepare_evictions),
                sstats.prepare_cache_entries, sstats.prepare_cache_bytes);
  }
  return rc;
}

/// The whole CLI run behind one exit code, so main can wrap it with trace
/// capture regardless of which path (single, all-algo, multi-query) runs.
int RunCli(const CliArgs& args) {
  if (args.queries > 1) {
    Algo algo;
    if (!AlgoFromName(args.algo, &algo) || !IsProgXeVariant(algo)) {
      std::fprintf(stderr,
                   "--queries=%zu requires a ProgXe variant --algo "
                   "(got %s)\n",
                   args.queries, args.algo.c_str());
      return 2;
    }
    return RunMultiQuery(algo, args);
  }

  const WorkloadParams params = MakeParams(args, 0);
  auto workload = Workload::Make(params);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n", params.ToString().c_str());

  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    auto writer = CsvWriter::Open(args.csv_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
      return 1;
    }
    csv = std::make_unique<CsvWriter>(std::move(*writer));
    csv->WriteRow({"algo", "dist", "n", "dims", "sigma", "t_sec", "count"});
  }

  int rc = 0;
  if (args.algo == "all") {
    for (Algo algo : AllAlgos()) {
      rc |= RunOne(algo, *workload, args, csv.get());
    }
  } else {
    Algo algo;
    if (!AlgoFromName(args.algo, &algo)) {
      std::fprintf(stderr,
                   "unknown --algo=%s (try ProgXe, ProgXe+, ProgXe-NoOrder, "
                   "ProgXe+-NoOrder, JF-SL, JF-SL+, SSMJ, SAJ, all)\n",
                   args.algo.c_str());
      return 2;
    }
    rc = RunOne(algo, *workload, args, csv.get());
  }
  if (csv != nullptr) csv->Close();
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  if (!args.trace_path.empty()) Tracing::Start();
  int rc = RunCli(args);
  if (!args.trace_path.empty()) {
    Tracing::Stop();
    Status st = Tracing::WriteJson(args.trace_path);
    if (!st.ok()) {
      std::fprintf(stderr, "--trace_out: %s\n", st.ToString().c_str());
      if (rc == 0) rc = 1;
    } else {
      std::printf("trace: wrote %s (%llu events, %llu dropped)\n",
                  args.trace_path.c_str(),
                  static_cast<unsigned long long>(Tracing::buffered()),
                  static_cast<unsigned long long>(Tracing::dropped()));
    }
  }
  return rc;
}
