// progxe_cli — run any algorithm on a synthetic SkyMapJoin workload from
// the command line and inspect progressiveness interactively.
//
//   $ progxe_cli --dist=anti --n=20000 --dims=4 --sigma=0.001 --algo=ProgXe
//   $ progxe_cli --algo=all --csv=series.csv
//
// Flags:
//   --dist=independent|correlated|anticorrelated   (default independent)
//   --n=<N>            source cardinality            (default 10000)
//   --dims=<d>         skyline dimensions            (default 4)
//   --sigma=<s>        join selectivity              (default 0.001)
//   --seed=<s>         workload seed                 (default 42)
//   --algo=<name|all>  ProgXe, ProgXe+, ProgXe-NoOrder, ProgXe+-NoOrder,
//                      JF-SL, JF-SL+, SSMJ, SAJ, all  (default ProgXe)
//   --kd               use the kd-tree partitioner for ProgXe variants
//   --num_threads=<w>  join->map worker threads for ProgXe variants
//                      (default 1; results are identical at any count)
//   --csv=<path>       append per-emission series rows to a CSV file
//   --series=<k>       print at most k series samples (default 10)
#include <cstdio>
#include <cstring>
#include <string>

#include "common/csv_writer.h"
#include "harness/experiment.h"

using namespace progxe;

namespace {

struct CliArgs {
  Distribution dist = Distribution::kIndependent;
  size_t n = 10000;
  int dims = 4;
  double sigma = 0.001;
  uint64_t seed = 42;
  std::string algo = "ProgXe";
  bool kd = false;
  int num_threads = 1;
  std::string csv_path;
  int series_samples = 10;
};

bool ParseArgs(int argc, char** argv, CliArgs* args) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return std::strncmp(arg, prefix, len) == 0 ? arg + len : nullptr;
    };
    if (const char* v = value("--dist=")) {
      auto dist = ParseDistribution(v);
      if (!dist.ok()) {
        std::fprintf(stderr, "%s\n", dist.status().ToString().c_str());
        return false;
      }
      args->dist = *dist;
    } else if (const char* v = value("--n=")) {
      args->n = static_cast<size_t>(std::atoll(v));
    } else if (const char* v = value("--dims=")) {
      args->dims = std::atoi(v);
    } else if (const char* v = value("--sigma=")) {
      args->sigma = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      args->seed = static_cast<uint64_t>(std::atoll(v));
    } else if (const char* v = value("--algo=")) {
      args->algo = v;
    } else if (const char* v = value("--csv=")) {
      args->csv_path = v;
    } else if (const char* v = value("--num_threads=")) {
      args->num_threads = std::atoi(v);
      if (args->num_threads < 1) {
        std::fprintf(stderr, "--num_threads must be >= 1\n");
        return false;
      }
    } else if (const char* v = value("--series=")) {
      args->series_samples = std::atoi(v);
    } else if (std::strcmp(arg, "--kd") == 0) {
      args->kd = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("see the header comment of tools/progxe_cli.cc\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return false;
    }
  }
  return true;
}

bool AlgoFromName(const std::string& name, Algo* out) {
  struct Entry {
    const char* name;
    Algo algo;
  };
  static const Entry kEntries[] = {
      {"ProgXe", Algo::kProgXe},
      {"ProgXe+", Algo::kProgXePlus},
      {"ProgXe-NoOrder", Algo::kProgXeNoOrder},
      {"ProgXe+-NoOrder", Algo::kProgXePlusNoOrder},
      {"JF-SL", Algo::kJfSl},
      {"JF-SL+", Algo::kJfSlPlus},
      {"SSMJ", Algo::kSsmj},
      {"SAJ", Algo::kSaj},
  };
  for (const Entry& e : kEntries) {
    if (name == e.name) {
      *out = e.algo;
      return true;
    }
  }
  return false;
}

int RunOne(Algo algo, const Workload& workload, const CliArgs& args,
           CsvWriter* csv) {
  ProgXeOptions tuning;
  if (args.kd) tuning.partitioning = PartitioningScheme::kKdTree;
  tuning.num_threads = args.num_threads;
  auto run = RunAlgorithm(algo, workload, tuning);
  if (!run.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", AlgoName(algo),
                 run.status().ToString().c_str());
    return 1;
  }
  std::printf("%-20s results=%-8zu t_first=%.6fs t_50%%=%.6fs total=%.6fs "
              "cmps=%llu pairs=%llu\n",
              AlgoName(algo), run->metrics.total_results,
              run->metrics.time_to_first, run->metrics.time_to_50pct,
              run->metrics.total_time,
              static_cast<unsigned long long>(run->dominance_comparisons),
              static_cast<unsigned long long>(run->join_pairs));
  if (args.series_samples > 0 && !run->series.empty()) {
    std::vector<SeriesPoint> pts = run->series;
    const size_t max_pts = static_cast<size_t>(args.series_samples);
    if (pts.size() > max_pts) {
      std::vector<SeriesPoint> sampled;
      const double step = static_cast<double>(pts.size() - 1) /
                          static_cast<double>(max_pts - 1);
      for (size_t i = 0; i < max_pts; ++i) {
        sampled.push_back(
            pts[std::min(static_cast<size_t>(step * static_cast<double>(i)),
                         pts.size() - 1)]);
      }
      sampled.back() = pts.back();
      pts = std::move(sampled);
    }
    std::printf("  series:");
    for (const SeriesPoint& p : pts) {
      std::printf(" %.4f:%zu", p.t_sec, p.count);
    }
    std::printf("\n");
  }
  if (csv != nullptr) {
    for (const SeriesPoint& p : run->series) {
      csv->WriteValues(std::string(AlgoName(algo)),
                       std::string(DistributionName(args.dist)), args.n,
                       args.dims, args.sigma, p.t_sec, p.count);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  WorkloadParams params;
  params.distribution = args.dist;
  params.cardinality = args.n;
  params.dims = args.dims;
  params.sigma = args.sigma;
  params.seed = args.seed;
  auto workload = Workload::Make(params);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n", params.ToString().c_str());

  std::unique_ptr<CsvWriter> csv;
  if (!args.csv_path.empty()) {
    auto writer = CsvWriter::Open(args.csv_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
      return 1;
    }
    csv = std::make_unique<CsvWriter>(std::move(*writer));
    csv->WriteRow({"algo", "dist", "n", "dims", "sigma", "t_sec", "count"});
  }

  int rc = 0;
  if (args.algo == "all") {
    for (Algo algo : AllAlgos()) {
      rc |= RunOne(algo, *workload, args, csv.get());
    }
  } else {
    Algo algo;
    if (!AlgoFromName(args.algo, &algo)) {
      std::fprintf(stderr,
                   "unknown --algo=%s (try ProgXe, ProgXe+, ProgXe-NoOrder, "
                   "ProgXe+-NoOrder, JF-SL, JF-SL+, SSMJ, SAJ, all)\n",
                   args.algo.c_str());
      return 2;
    }
    rc = RunOne(algo, *workload, args, csv.get());
  }
  if (csv != nullptr) csv->Close();
  return rc;
}
