// progxe_server — line-protocol driver for the multi-query serving layer.
//
// Reads commands from stdin, streams events to stdout (one line each,
// flushed), serving every query through one QueryScheduler. Meant both as
// an interactive demo of progressive multi-query serving and as a
// scriptable endpoint (pipe a command file in, or hook the process up to a
// socket with `socat TCP-LISTEN:9999,fork EXEC:progxe_server`).
//
// Process flags:
//   --workers=<n>         scheduler worker threads          (default 2)
//   --budget=<pairs>      join pairs per NextBatch slice    (default 4096)
//   --policy=rr|wf        round-robin | weighted-fair       (default rr)
//   --max_concurrent=<n>  admission slots, 0 = unbounded    (default 8)
//   --max_queue=<n>       waiting-room bound, 0 = unbounded (default 0)
//   --deadline_ms=<ms>    default per-query deadline, 0 = none (default 0)
//   --echo_results        print each result tuple's id pair
//
// Protocol (one command per line; tokens are key=value or bare words):
//   submit [dist=independent|correlated|anticorrelated] [n=10000] [dims=4]
//          [sigma=0.001] [seed=42] [threads=1] [max_results=0] [weight=1]
//          [shards=1] [deadline_ms=0]
//          [algo=ProgXe|ProgXe+|ProgXe-NoOrder|ProgXe+-NoOrder] [kd]
//     -> "ok id=<id>"; then asynchronously:
//        "batch id=<id> n=<k> total=<total> t=<sec>"      (per delivery)
//        "result id=<id> r=<rid> t=<tid>"                 (--echo_results)
//        "done id=<id> state=<state> results=<n> pairs=<n> cmps=<n> t=<sec>"
//     shards=K > 1 serves the query through the sharded executor (one
//     sub-session per shard behind the handle); deadline_ms > 0 overrides
//     the server-wide default and expires the query with
//     state=deadline_exceeded.
//   cancel <id>     cooperative cancellation
//   stats <id>      one "stat ..." line (live state, final stats if done)
//   stats           one "sched ..." line: the SchedulerStats snapshot
//                   (queue depth, running, slices, sliced pairs, outcomes)
//   list            one "stat ..." line per submitted query
//   quit            drain nothing further; cancel outstanding and exit
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "service/scheduler.h"

using namespace progxe;

namespace {

std::mutex g_out_mtx;

void Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_out_mtx);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// One served query: owns the workload (the relations must outlive the
/// stream) and the printing sink.
struct ServedQuery : QuerySink {
  uint64_t id = 0;
  bool echo_results = false;
  Stopwatch watch;  // started at submit
  std::unique_ptr<Workload> workload;
  QueryHandle handle;

  /// Written by scheduler workers, read by the stdin thread (stats/list).
  std::atomic<size_t> total{0};

  void OnBatch(const std::vector<ResultTuple>& batch) override {
    const size_t so_far =
        total.fetch_add(batch.size(), std::memory_order_relaxed) +
        batch.size();
    char buf[128];
    std::snprintf(buf, sizeof buf, "batch id=%llu n=%zu total=%zu t=%.6f",
                  static_cast<unsigned long long>(id), batch.size(), so_far,
                  watch.ElapsedSeconds());
    Emit(buf);
    if (echo_results) {
      for (const ResultTuple& res : batch) {
        std::snprintf(buf, sizeof buf, "result id=%llu r=%lld t=%lld",
                      static_cast<unsigned long long>(id),
                      static_cast<long long>(res.r_id),
                      static_cast<long long>(res.t_id));
        Emit(buf);
      }
    }
  }

  void OnDone(QueryState state, const Status& status,
              const ProgXeStats& stats) override {
    // The stream is already closed: nothing references the relations
    // anymore (and no other thread touches `workload` after submit), so a
    // long-lived server drops them now; the map entry stays for
    // stats/list.
    workload.reset();
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "done id=%llu state=%s results=%zu pairs=%llu cmps=%llu "
                  "t=%.6f",
                  static_cast<unsigned long long>(id), QueryStateName(state),
                  stats.results_emitted,
                  static_cast<unsigned long long>(stats.join_pairs_generated),
                  static_cast<unsigned long long>(stats.dominance_comparisons),
                  watch.ElapsedSeconds());
    Emit(buf);
    if (!status.ok()) Emit("err id=" + std::to_string(id) + " " +
                           status.ToString());
  }
};

struct SubmitSpec {
  WorkloadParams params;
  ProgXeOptions options;
  SubmitOptions submit;
  Algo algo = Algo::kProgXe;
};

bool ParseSubmit(const std::vector<std::string>& tokens, SubmitSpec* spec,
                 std::string* error) {
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      if (tok == "kd") {
        spec->options.partitioning = PartitioningScheme::kKdTree;
        continue;
      }
      *error = "unknown token: " + tok;
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    if (key == "dist") {
      auto dist = ParseDistribution(val);
      if (!dist.ok()) {
        *error = dist.status().ToString();
        return false;
      }
      spec->params.distribution = *dist;
    } else if (key == "n") {
      spec->params.cardinality = static_cast<size_t>(std::atoll(val.c_str()));
    } else if (key == "dims") {
      spec->params.dims = std::atoi(val.c_str());
    } else if (key == "sigma") {
      spec->params.sigma = std::atof(val.c_str());
    } else if (key == "seed") {
      spec->params.seed = static_cast<uint64_t>(std::atoll(val.c_str()));
    } else if (key == "threads") {
      spec->options.num_threads = std::atoi(val.c_str());
    } else if (key == "max_results") {
      spec->options.max_results =
          static_cast<size_t>(std::atoll(val.c_str()));
    } else if (key == "weight") {
      spec->submit.weight = std::atof(val.c_str());
    } else if (key == "shards") {
      spec->submit.shards.num_shards = std::atoi(val.c_str());
      if (spec->submit.shards.num_shards < 1) {
        *error = "shards must be >= 1";
        return false;
      }
    } else if (key == "deadline_ms") {
      spec->submit.deadline =
          std::chrono::milliseconds(std::atoll(val.c_str()));
    } else if (key == "algo") {
      Algo algo;
      if (!AlgoFromName(val, &algo) || !IsProgXeVariant(algo)) {
        *error = "algo must be a ProgXe variant, got " + val;
        return false;
      }
      spec->algo = algo;
    } else {
      *error = "unknown key: " + key;
      return false;
    }
  }
  return true;
}

void PrintStat(const ServedQuery& query) {
  const QueryState state = query.handle.state();
  std::ostringstream line;
  line << "stat id=" << query.id << " state=" << QueryStateName(state)
       << " delivered=" << query.total.load(std::memory_order_relaxed);
  if (IsTerminal(state)) {
    const ProgXeStats& stats = query.handle.stats();
    line << " results=" << stats.results_emitted
         << " pairs=" << stats.join_pairs_generated
         << " cmps=" << stats.dominance_comparisons;
  }
  Emit(line.str());
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  bool echo_results = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--workers=", 10) == 0) {
      sopts.num_workers = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--budget=", 9) == 0) {
      sopts.batch_budget = static_cast<size_t>(std::atoll(arg + 9));
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      if (!FairnessPolicyFromName(arg + 9, &sopts.policy)) {
        std::fprintf(stderr, "--policy must be rr or wf\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--max_concurrent=", 17) == 0) {
      sopts.max_concurrent = static_cast<size_t>(std::atoll(arg + 17));
    } else if (std::strncmp(arg, "--max_queue=", 12) == 0) {
      sopts.max_queue = static_cast<size_t>(std::atoll(arg + 12));
    } else if (std::strncmp(arg, "--deadline_ms=", 14) == 0) {
      sopts.default_deadline = std::chrono::milliseconds(std::atoll(arg + 14));
    } else if (std::strcmp(arg, "--echo_results") == 0) {
      echo_results = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("see the header comment of tools/progxe_server.cc\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  // Declared before the scheduler so teardown runs in the right order: the
  // scheduler destructor cancel-finishes outstanding queries (firing their
  // sinks' OnDone) while the sinks and their workloads are still alive.
  std::map<uint64_t, std::unique_ptr<ServedQuery>> queries;
  uint64_t next_id = 1;
  QueryScheduler scheduler(sopts);

  Emit(std::string("ready workers=") + std::to_string(sopts.num_workers) +
       " budget=" + std::to_string(sopts.batch_budget) +
       " policy=" + FairnessPolicyName(sopts.policy));

  std::string line;
  char linebuf[4096];
  while (std::fgets(linebuf, sizeof linebuf, stdin) != nullptr) {
    line.assign(linebuf);
    // A read without a trailing newline means either the final line of the
    // input (fine) or a command longer than the buffer: drain the latter
    // and reject it whole rather than executing a truncated prefix and a
    // garbage remainder.
    if (!line.empty() && line.back() != '\n' &&
        std::fgets(linebuf, sizeof linebuf, stdin) != nullptr) {
      size_t len = std::strlen(linebuf);
      while ((len == 0 || linebuf[len - 1] != '\n') &&
             std::fgets(linebuf, sizeof linebuf, stdin) != nullptr) {
        len = std::strlen(linebuf);
      }
      Emit("err command line too long (max 4095 bytes)");
      continue;
    }
    std::istringstream in(line);
    std::vector<std::string> tokens;
    for (std::string tok; in >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "submit") {
      SubmitSpec spec;
      std::string error;
      if (!ParseSubmit(tokens, &spec, &error)) {
        Emit("err " + error);
        continue;
      }
      auto workload = Workload::Make(spec.params);
      if (!workload.ok()) {
        Emit("err " + workload.status().ToString());
        continue;
      }
      auto query = std::make_unique<ServedQuery>();
      query->id = next_id++;
      query->echo_results = echo_results;
      query->workload = std::make_unique<Workload>(workload.MoveValue());
      query->watch.Start();
      // The ok line must precede the query's asynchronous batch/done
      // events, so emit it before the scheduler can start slicing; a
      // Submit failure then voids the id with an err line.
      Emit("ok id=" + std::to_string(query->id));
      auto handle = scheduler.Submit(query->workload->query(),
                                     OptionsForAlgo(spec.algo, spec.options),
                                     query.get(), spec.submit);
      if (!handle.ok()) {
        Emit("err id=" + std::to_string(query->id) + " " +
             handle.status().ToString());
        continue;
      }
      query->handle = *handle;
      queries.emplace(query->id, std::move(query));
      continue;
    }

    if (cmd == "stats" && tokens.size() == 1) {
      // Same field formatter as SchedulerStats::ToString, so every counter
      // added to the snapshot lands in both outputs at once.
      Emit("sched " + scheduler.stats().FormatFields());
      continue;
    }

    if (cmd == "cancel" || cmd == "stats") {
      if (tokens.size() != 2) {
        Emit("err usage: " + cmd + " <id>");
        continue;
      }
      const uint64_t id =
          static_cast<uint64_t>(std::atoll(tokens[1].c_str()));
      auto it = queries.find(id);
      if (it == queries.end()) {
        Emit("err no such query: " + tokens[1]);
        continue;
      }
      if (cmd == "cancel") {
        it->second->handle.Cancel();
        Emit("ok cancelling id=" + tokens[1]);
      } else {
        PrintStat(*it->second);
      }
      continue;
    }

    if (cmd == "list") {
      for (const auto& [id, query] : queries) PrintStat(*query);
      Emit("ok " + std::to_string(queries.size()) + " queries");
      continue;
    }

    if (cmd == "drain") {
      scheduler.Drain();
      Emit("ok drained");
      continue;
    }

    Emit("err unknown command: " + cmd +
         " (try submit/cancel/stats/list/drain/quit)");
  }

  // Scheduler destruction cancels whatever is still in flight; sinks (and
  // the workloads they join over) stay alive until after that.
  return 0;
}
