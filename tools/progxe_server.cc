// progxe_server — line-protocol driver for the multi-query serving layer.
//
// Reads commands from stdin, streams events to stdout (one line each,
// flushed), serving every query through one QueryScheduler. Meant both as
// an interactive demo of progressive multi-query serving and as a
// scriptable endpoint (pipe a command file in, or hook the process up to a
// socket with `socat TCP-LISTEN:9999,fork EXEC:progxe_server`).
//
// Process flags:
//   --workers=<n>         scheduler worker threads          (default 2)
//   --budget=<pairs>      join pairs per NextBatch slice    (default 4096)
//   --policy=rr|wf        round-robin | weighted-fair       (default rr)
//   --max_concurrent=<n>  admission slots, 0 = unbounded    (default 8)
//   --max_queue=<n>       waiting-room bound, 0 = unbounded (default 0)
//   --deadline_ms=<ms>    default per-query deadline, 0 = none (default 0)
//   --echo_results        print each result tuple's id pair
//   --worker              shard-worker daemon mode: serve the wire protocol
//                         (docs/worker_protocol.md) instead of the line
//                         protocol below. Prints "worker listening port=<p>"
//                         once bound, then runs until "quit" on stdin or a
//                         SIGTERM/SIGINT. A signal drains gracefully: stop
//                         accepting, refuse new shard opens, finish
//                         in-flight sessions (bounded by --drain_timeout_ms)
//                         then exit 0.
//   --listen=<port>       worker-mode listen port; 0 = ephemeral (default 0)
//   --drain_timeout_ms=<ms>  worker-mode graceful-drain bound on SIGTERM/
//                         SIGINT before in-flight sessions are severed
//                         (default 5000)
//
// Protocol (one command per line; tokens are key=value or bare words):
//   submit [dist=independent|correlated|anticorrelated] [n=10000] [dims=4]
//          [sigma=0.001] [seed=42] [threads=1] [max_results=0] [weight=1]
//          [shards=1] [deadline_ms=0]
//          [algo=ProgXe|ProgXe+|ProgXe-NoOrder|ProgXe+-NoOrder] [kd]
//          [faults=<spec>] [fault_seed=0] [max_retries=2]
//          [retry_backoff_ms=1] [allow_partial] [reuse=0|1] [parent=<id>]
//          [workers=host:port,host:port,...]
//     -> "ok id=<id>"; then asynchronously:
//        "batch id=<id> n=<k> total=<total> t=<sec>"      (per delivery)
//        "result id=<id> r=<rid> t=<tid>"                 (--echo_results)
//        "done id=<id> state=<state> results=<n> pairs=<n> cmps=<n> t=<sec>"
//     shards=K > 1 serves the query through the sharded executor (one
//     sub-session per shard behind the handle); deadline_ms > 0 overrides
//     the server-wide default and expires the query with
//     state=deadline_exceeded. faults= compiles a fault-injection spec
//     (common/fault_injection.h grammar, seeded by fault_seed=) into the
//     query; max_retries=/retry_backoff_ms= bound the per-shard recovery,
//     and allow_partial lets a query whose shard exhausts its retries
//     complete as state=partial instead of failed. reuse=1 keeps the
//     query's workload and accepted results alive after it finishes so
//     later refinements can build on it; parent=<id> submits a refinement
//     of a reuse=1 query: it serves the parent's exact relations (so the
//     prepared-state cache hits) and seeds region pruning from the
//     parent's accepted frontier. A parent= submit must not restate
//     workload-shaping keys (dist/n/dims/sigma/seed) — the workload is the
//     parent's by definition. workers= runs the query's shards on remote
//     worker processes (--worker mode) instead of in-process sessions;
//     shard i's incarnation n dials workers[(i + n) % len], and the usual
//     max_retries/allow_partial recovery budget applies to transport
//     failures too.
//   cancel <id>     cooperative cancellation
//   stats <id>      one "stat ..." line: live progress (phase, regions
//                   done/total, pairs, ttfr) in any state; a terminal query
//                   additionally reports its final counters and shard
//                   coverage (covered=i/K), partial or not
//   stats           one "sched ..." line: the SchedulerStats snapshot
//                   (queue depth, running, slices, sliced pairs, outcomes)
//   metrics         the full Prometheus text exposition of the process
//                   metrics registry (executor totals over terminal
//                   queries, scheduler/cache/shard counters, slice-latency
//                   histogram, trace + fault counters), terminated by an
//                   "ok metrics" line
//   list            one "stat ..." line per submitted query
//   quit            drain nothing further; cancel outstanding and exit
//
// Every malformed command — unknown key, non-numeric or out-of-range
// value, over-limit workload — is answered with an explicit "err ..."
// line; the server never guesses (atoi-style zero-on-garbage) and never
// dies on bad input.
#include <poll.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/stopwatch.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "net/net_stats.h"
#include "net/worker_pool.h"
#include "net/worker_service.h"
#include "obs/metrics.h"
#include "service/scheduler.h"

using namespace progxe;

namespace {

// Submit-side guardrails: a line-protocol endpoint may face untrusted
// input, so a single command cannot ask for an absurd workload. Over-limit
// values get an explicit err reply, not a silent clamp.
constexpr size_t kMaxCardinality = 20'000'000;
constexpr int kMaxDims = 16;
constexpr int kMaxShards = 64;
constexpr int kMaxThreads = 128;
constexpr int kMaxRetries = 1000;

/// Strict full-token numeric parsers: the whole string must be consumed
/// ("12x", "", "-3" for unsigned all fail), unlike atoi/atof which return
/// 0 on garbage and would silently run a default workload.
bool ParseU64(const std::string& s, uint64_t* out) {
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

bool ParseI64(const std::string& s, int64_t* out) {
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(s.data(), end, *out);
  return ec == std::errc() && ptr == end && !s.empty();
}

bool ParseI32(const std::string& s, int* out) {
  int64_t wide;
  if (!ParseI64(s, &wide) || wide < INT32_MIN || wide > INT32_MAX) {
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

bool ParseSize(const std::string& s, size_t* out) {
  uint64_t wide;
  if (!ParseU64(s, &wide) || wide > SIZE_MAX) return false;
  *out = static_cast<size_t>(wide);
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

std::mutex g_out_mtx;

/// Self-pipe for the worker-mode SIGTERM/SIGINT drain: the handler writes
/// one byte, the serving loop polls the read end (file-scope because a
/// signal handler must be a capture-less function).
int g_signal_pipe[2] = {-1, -1};

void Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(g_out_mtx);
  std::fputs(line.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

/// Multi-line output (the Prometheus exposition) written atomically with
/// respect to concurrent batch/done event lines.
void EmitRaw(const std::string& text) {
  std::lock_guard<std::mutex> lock(g_out_mtx);
  std::fputs(text.c_str(), stdout);
  std::fflush(stdout);
}

/// Process-total executor counters: every terminal query's final stats,
/// accumulated as its OnDone fires (scheduler worker threads) and read by
/// the stdin thread's `metrics` command.
std::mutex g_terminal_mtx;
ProgXeStats g_terminal_stats;

/// One served query: owns the workload (the relations must outlive the
/// stream) and the printing sink.
struct ServedQuery : QuerySink {
  uint64_t id = 0;
  bool echo_results = false;
  /// reuse=1: keep the workload after OnDone so parent= refinements can
  /// share it (pointer-identical sources are what let the prepared-state
  /// cache and frontier seeding engage).
  bool reuse = false;
  Stopwatch watch;  // started at submit
  std::shared_ptr<Workload> workload;
  QueryHandle handle;

  /// Written by scheduler workers, read by the stdin thread (stats/list).
  std::atomic<size_t> total{0};

  void OnBatch(const std::vector<ResultTuple>& batch) override {
    const size_t so_far =
        total.fetch_add(batch.size(), std::memory_order_relaxed) +
        batch.size();
    char buf[128];
    std::snprintf(buf, sizeof buf, "batch id=%llu n=%zu total=%zu t=%.6f",
                  static_cast<unsigned long long>(id), batch.size(), so_far,
                  watch.ElapsedSeconds());
    Emit(buf);
    if (echo_results) {
      for (const ResultTuple& res : batch) {
        std::snprintf(buf, sizeof buf, "result id=%llu r=%lld t=%lld",
                      static_cast<unsigned long long>(id),
                      static_cast<long long>(res.r_id),
                      static_cast<long long>(res.t_id));
        Emit(buf);
      }
    }
  }

  void OnDone(QueryState state, const Status& status,
              const ProgXeStats& stats) override {
    // The stream is already closed: nothing references the relations
    // anymore (and no other thread touches `workload` after submit), so a
    // long-lived server drops its reference now — unless reuse=1 pinned
    // the workload for later parent= refinements. Children sharing it keep
    // it alive regardless; the map entry stays for stats/list.
    if (!reuse) workload.reset();
    {
      std::lock_guard<std::mutex> lock(g_terminal_mtx);
      g_terminal_stats.Accumulate(stats);
    }
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "done id=%llu state=%s results=%zu pairs=%llu cmps=%llu "
                  "t=%.6f",
                  static_cast<unsigned long long>(id), QueryStateName(state),
                  stats.results_emitted,
                  static_cast<unsigned long long>(stats.join_pairs_generated),
                  static_cast<unsigned long long>(stats.dominance_comparisons),
                  watch.ElapsedSeconds());
    Emit(buf);
    if (!status.ok()) Emit("err id=" + std::to_string(id) + " " +
                           status.ToString());
  }
};

struct SubmitSpec {
  WorkloadParams params;
  ProgXeOptions options;
  SubmitOptions submit;
  Algo algo = Algo::kProgXe;
  bool reuse = false;
  bool has_parent = false;
  uint64_t parent_id = 0;
  /// True once any workload-shaping key (dist/n/dims/sigma/seed) appears;
  /// such keys conflict with parent= and get an explicit err.
  bool shaped = false;
};

bool ParseSubmit(const std::vector<std::string>& tokens, SubmitSpec* spec,
                 std::string* error) {
  std::string faults_spec;
  uint64_t fault_seed = 0;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      if (tok == "kd") {
        spec->options.partitioning = PartitioningScheme::kKdTree;
        continue;
      }
      if (tok == "allow_partial") {
        spec->submit.allow_partial = true;
        continue;
      }
      *error = "unknown token: " + tok;
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    auto bad_value = [&] {
      *error = "bad value for " + key + ": " + val;
      return false;
    };
    if (key == "dist") {
      auto dist = ParseDistribution(val);
      if (!dist.ok()) {
        *error = dist.status().ToString();
        return false;
      }
      spec->params.distribution = *dist;
      spec->shaped = true;
    } else if (key == "n") {
      if (!ParseSize(val, &spec->params.cardinality)) return bad_value();
      if (spec->params.cardinality < 1 ||
          spec->params.cardinality > kMaxCardinality) {
        *error = "n out of range [1, " + std::to_string(kMaxCardinality) +
                 "]: " + val;
        return false;
      }
      spec->shaped = true;
    } else if (key == "dims") {
      if (!ParseI32(val, &spec->params.dims)) return bad_value();
      if (spec->params.dims < 2 || spec->params.dims > kMaxDims) {
        *error = "dims out of range [2, " + std::to_string(kMaxDims) +
                 "]: " + val;
        return false;
      }
      spec->shaped = true;
    } else if (key == "sigma") {
      if (!ParseF64(val, &spec->params.sigma)) return bad_value();
      if (!(spec->params.sigma > 0.0) || spec->params.sigma > 1.0) {
        *error = "sigma out of range (0, 1]: " + val;
        return false;
      }
      spec->shaped = true;
    } else if (key == "seed") {
      if (!ParseU64(val, &spec->params.seed)) return bad_value();
      spec->shaped = true;
    } else if (key == "threads") {
      if (!ParseI32(val, &spec->options.num_threads)) return bad_value();
      if (spec->options.num_threads < 1 ||
          spec->options.num_threads > kMaxThreads) {
        *error = "threads out of range [1, " + std::to_string(kMaxThreads) +
                 "]: " + val;
        return false;
      }
    } else if (key == "max_results") {
      if (!ParseSize(val, &spec->options.max_results)) return bad_value();
    } else if (key == "weight") {
      if (!ParseF64(val, &spec->submit.weight)) return bad_value();
      if (!(spec->submit.weight > 0.0)) {
        *error = "weight must be > 0: " + val;
        return false;
      }
    } else if (key == "shards") {
      if (!ParseI32(val, &spec->submit.shards.num_shards)) return bad_value();
      if (spec->submit.shards.num_shards < 1 ||
          spec->submit.shards.num_shards > kMaxShards) {
        *error = "shards out of range [1, " + std::to_string(kMaxShards) +
                 "]: " + val;
        return false;
      }
    } else if (key == "deadline_ms") {
      int64_t ms;
      if (!ParseI64(val, &ms)) return bad_value();
      spec->submit.deadline = std::chrono::milliseconds(ms);
    } else if (key == "max_retries") {
      int retries;
      if (!ParseI32(val, &retries)) return bad_value();
      if (retries < 0 || retries > kMaxRetries) {
        *error = "max_retries out of range [0, " +
                 std::to_string(kMaxRetries) + "]: " + val;
        return false;
      }
      spec->submit.shards.max_retries = retries;
    } else if (key == "retry_backoff_ms") {
      int64_t ms;
      if (!ParseI64(val, &ms) || ms < 0) return bad_value();
      spec->submit.shards.retry_backoff = std::chrono::milliseconds(ms);
    } else if (key == "allow_partial") {
      if (val != "0" && val != "1") return bad_value();
      spec->submit.allow_partial = val == "1";
    } else if (key == "reuse") {
      if (val != "0" && val != "1") return bad_value();
      spec->reuse = val == "1";
    } else if (key == "parent") {
      if (!ParseU64(val, &spec->parent_id)) return bad_value();
      spec->has_parent = true;
    } else if (key == "workers") {
      auto list = ParseWorkerList(val);
      if (!list.ok()) {
        *error = list.status().ToString();
        return false;
      }
      spec->submit.workers = list.MoveValue();
      if (spec->submit.workers.empty()) {
        *error = "workers= needs at least one host:port endpoint";
        return false;
      }
    } else if (key == "faults") {
      faults_spec = val;
    } else if (key == "fault_seed") {
      if (!ParseU64(val, &fault_seed)) return bad_value();
    } else if (key == "algo") {
      Algo algo;
      if (!AlgoFromName(val, &algo) || !IsProgXeVariant(algo)) {
        *error = "algo must be a ProgXe variant, got " + val;
        return false;
      }
      spec->algo = algo;
    } else {
      *error = "unknown key: " + key;
      return false;
    }
  }
  if (!faults_spec.empty()) {
    auto injector = FaultInjector::Parse(faults_spec, fault_seed);
    if (!injector.ok()) {
      *error = injector.status().ToString();
      return false;
    }
    spec->options.faults = injector.MoveValue();
  }
  return true;
}

void PrintStat(const ServedQuery& query) {
  const QueryProgress progress = query.handle.progress();
  const QueryState state = progress.state;
  std::ostringstream line;
  line << "stat id=" << query.id << " state=" << QueryStateName(state)
       << " phase=" << progress.phase
       << " delivered=" << query.total.load(std::memory_order_relaxed)
       << " regions=" << progress.regions_done << "/"
       << progress.regions_total << " pairs=" << progress.pairs_processed;
  if (progress.ttfr_seconds >= 0.0) {
    char ttfr[32];
    std::snprintf(ttfr, sizeof ttfr, " ttfr=%.6f", progress.ttfr_seconds);
    line << ttfr;
  }
  if (IsTerminal(state)) {
    const ProgXeStats& stats = query.handle.stats();
    line << " results=" << stats.results_emitted
         << " cmps=" << stats.dominance_comparisons;
    // Coverage is part of every terminal report — a finished query says
    // covered=K/K rather than staying silent, so "did we see everything?"
    // never needs a second command.
    const ShardCoverage& coverage = query.handle.coverage();
    line << " covered=" << coverage.completed << "/" << coverage.shards
         << " retries=" << coverage.retries;
    if (coverage.remote > 0) line << " remote=" << coverage.remote;
    if (coverage.replay_pairs_saved > 0) {
      line << " saved_pairs=" << coverage.replay_pairs_saved;
    }
    if (!coverage.complete()) {
      line << " abandoned=";
      for (size_t i = 0; i < coverage.abandoned_shards.size(); ++i) {
        line << (i == 0 ? "" : ",") << coverage.abandoned_shards[i];
      }
    }
  } else if (progress.shards > 0) {
    line << " covered=" << progress.shards_completed << "/"
         << progress.shards;
    if (progress.shards_remote > 0) {
      line << " remote=" << progress.shards_remote;
    }
  }
  Emit(line.str());
}

}  // namespace

int main(int argc, char** argv) {
  ServiceOptions sopts;
  sopts.num_workers = 2;
  bool echo_results = false;
  bool worker_mode = false;
  int listen_port = 0;
  int64_t drain_timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto flag_err = [arg] {
      std::fprintf(stderr, "bad flag value: %s\n", arg);
      return 2;
    };
    int64_t i64 = 0;
    if (std::strncmp(arg, "--workers=", 10) == 0) {
      if (!ParseI32(arg + 10, &sopts.num_workers) || sopts.num_workers < 1) {
        return flag_err();
      }
    } else if (std::strncmp(arg, "--budget=", 9) == 0) {
      if (!ParseSize(arg + 9, &sopts.batch_budget)) return flag_err();
    } else if (std::strncmp(arg, "--policy=", 9) == 0) {
      if (!FairnessPolicyFromName(arg + 9, &sopts.policy)) {
        std::fprintf(stderr, "--policy must be rr or wf\n");
        return 2;
      }
    } else if (std::strncmp(arg, "--max_concurrent=", 17) == 0) {
      if (!ParseSize(arg + 17, &sopts.max_concurrent)) return flag_err();
    } else if (std::strncmp(arg, "--max_queue=", 12) == 0) {
      if (!ParseSize(arg + 12, &sopts.max_queue)) return flag_err();
    } else if (std::strncmp(arg, "--deadline_ms=", 14) == 0) {
      if (!ParseI64(arg + 14, &i64) || i64 < 0) return flag_err();
      sopts.default_deadline = std::chrono::milliseconds(i64);
    } else if (std::strcmp(arg, "--echo_results") == 0) {
      echo_results = true;
    } else if (std::strcmp(arg, "--worker") == 0) {
      worker_mode = true;
    } else if (std::strncmp(arg, "--listen=", 9) == 0) {
      if (!ParseI32(arg + 9, &listen_port) || listen_port < 0 ||
          listen_port > 65535) {
        return flag_err();
      }
    } else if (std::strncmp(arg, "--drain_timeout_ms=", 19) == 0) {
      if (!ParseI64(arg + 19, &drain_timeout_ms) || drain_timeout_ms < 0) {
        return flag_err();
      }
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf("see the header comment of tools/progxe_server.cc\n");
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  if (worker_mode) {
    // Daemon mode: no scheduler, no line protocol — just the wire protocol
    // behind a WorkerServer. The announce line is machine-readable so
    // launchers binding port 0 can read the real port back.
    WorkerServerOptions wopts;
    wopts.port = listen_port;
    auto server = WorkerServer::Start(wopts);
    if (!server.ok()) {
      std::fprintf(stderr, "worker start failed: %s\n",
                   server.status().ToString().c_str());
      return 1;
    }
    Emit("worker listening port=" + std::to_string((*server)->port()));
    // Graceful drain on SIGTERM/SIGINT via the classic self-pipe trick: the
    // handler only writes one byte (async-signal-safe), the main loop polls
    // the read end next to stdin and runs the actual drain outside signal
    // context. A second signal during the drain kills via the default
    // disposition restored below.
    if (::pipe(g_signal_pipe) != 0) {
      std::fprintf(stderr, "worker signal pipe failed\n");
      return 1;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = [](int) {
      const char byte = 1;
      [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
    };
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESETHAND;  // second signal = immediate default kill
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    bool drain = false;
    bool stdin_open = true;
    std::string cmd_buf;
    char buf[256];
    while (!drain) {
      struct pollfd fds[2];
      fds[0].fd = g_signal_pipe[0];
      fds[0].events = POLLIN;
      fds[0].revents = 0;
      fds[1].fd = STDIN_FILENO;
      fds[1].events = stdin_open ? POLLIN : 0;
      fds[1].revents = 0;
      if (::poll(fds, stdin_open ? 2 : 1, -1) < 0) {
        if (errno == EINTR) continue;
        break;
      }
      if (fds[0].revents != 0) {
        drain = true;  // signal: drain gracefully, then exit
        break;
      }
      if (!stdin_open || fds[1].revents == 0) continue;
      const ssize_t n = ::read(STDIN_FILENO, buf, sizeof buf);
      if (n <= 0) {
        // EOF (daemonized with </dev/null): keep serving, signals only.
        stdin_open = false;
        continue;
      }
      cmd_buf.append(buf, static_cast<size_t>(n));
      size_t nl;
      bool quit = false;
      while ((nl = cmd_buf.find('\n')) != std::string::npos) {
        std::string cmd = cmd_buf.substr(0, nl);
        cmd_buf.erase(0, nl + 1);
        while (!cmd.empty() && cmd.back() == '\r') cmd.pop_back();
        if (cmd == "quit" || cmd == "exit") {
          quit = true;
          break;
        }
        if (!cmd.empty()) Emit("err worker mode accepts only quit");
      }
      if (quit) {
        (*server)->Stop();
        return 0;
      }
    }
    Emit("worker draining timeout_ms=" + std::to_string(drain_timeout_ms));
    const bool clean =
        (*server)->Drain(std::chrono::milliseconds(drain_timeout_ms));
    Emit(std::string("worker drained clean=") + (clean ? "1" : "0"));
    return 0;
  }

  // Declared before the scheduler so teardown runs in the right order: the
  // scheduler destructor cancel-finishes outstanding queries (firing their
  // sinks' OnDone) while the sinks and their workloads are still alive.
  std::map<uint64_t, std::unique_ptr<ServedQuery>> queries;
  uint64_t next_id = 1;
  QueryScheduler scheduler(sopts);

  Emit(std::string("ready workers=") + std::to_string(sopts.num_workers) +
       " budget=" + std::to_string(sopts.batch_budget) +
       " policy=" + FairnessPolicyName(sopts.policy));

  std::string line;
  char linebuf[4096];
  while (std::fgets(linebuf, sizeof linebuf, stdin) != nullptr) {
    line.assign(linebuf);
    // A read without a trailing newline means either the final line of the
    // input (fine) or a command longer than the buffer: drain the latter
    // and reject it whole rather than executing a truncated prefix and a
    // garbage remainder.
    if (!line.empty() && line.back() != '\n' &&
        std::fgets(linebuf, sizeof linebuf, stdin) != nullptr) {
      size_t len = std::strlen(linebuf);
      while ((len == 0 || linebuf[len - 1] != '\n') &&
             std::fgets(linebuf, sizeof linebuf, stdin) != nullptr) {
        len = std::strlen(linebuf);
      }
      Emit("err command line too long (max 4095 bytes)");
      continue;
    }
    std::istringstream in(line);
    std::vector<std::string> tokens;
    for (std::string tok; in >> tok;) tokens.push_back(tok);
    if (tokens.empty()) continue;
    const std::string& cmd = tokens[0];

    if (cmd == "quit" || cmd == "exit") break;

    if (cmd == "submit") {
      SubmitSpec spec;
      std::string error;
      if (!ParseSubmit(tokens, &spec, &error)) {
        Emit("err " + error);
        continue;
      }
      std::shared_ptr<Workload> workload;
      if (spec.has_parent) {
        // A refinement serves the parent's exact workload: restating
        // shaping keys would silently describe a different one.
        if (spec.shaped) {
          Emit("err parent= conflicts with dist/n/dims/sigma/seed");
          continue;
        }
        auto parent_it = queries.find(spec.parent_id);
        if (parent_it == queries.end()) {
          Emit("err no such parent: " + std::to_string(spec.parent_id));
          continue;
        }
        if (!parent_it->second->reuse ||
            parent_it->second->workload == nullptr) {
          Emit("err parent " + std::to_string(spec.parent_id) +
               " was not submitted with reuse=1");
          continue;
        }
        workload = parent_it->second->workload;
        spec.submit.parent = parent_it->second->handle;
        spec.submit.seed_from_parent = true;
      } else {
        auto made = Workload::Make(spec.params);
        if (!made.ok()) {
          Emit("err " + made.status().ToString());
          continue;
        }
        workload = std::make_shared<Workload>(made.MoveValue());
      }
      spec.submit.retain_results = spec.reuse;
      auto query = std::make_unique<ServedQuery>();
      query->id = next_id++;
      query->echo_results = echo_results;
      query->reuse = spec.reuse;
      query->workload = std::move(workload);
      query->watch.Start();
      // The ok line must precede the query's asynchronous batch/done
      // events, so emit it before the scheduler can start slicing; a
      // Submit failure then voids the id with an err line.
      Emit("ok id=" + std::to_string(query->id));
      auto handle = scheduler.Submit(query->workload->query(),
                                     OptionsForAlgo(spec.algo, spec.options),
                                     query.get(), spec.submit);
      if (!handle.ok()) {
        Emit("err id=" + std::to_string(query->id) + " " +
             handle.status().ToString());
        continue;
      }
      query->handle = *handle;
      queries.emplace(query->id, std::move(query));
      continue;
    }

    if (cmd == "stats" && tokens.size() == 1) {
      // Same field formatter as SchedulerStats::ToString, so every counter
      // added to the snapshot lands in both outputs at once.
      Emit("sched " + scheduler.stats().FormatFields());
      continue;
    }

    if (cmd == "metrics") {
      // Fold a consistent snapshot into the process registry, then render
      // the whole exposition. Executor totals cover terminal queries (the
      // only ones whose counters are final); coverage sums every terminal
      // handle's shard report.
      MetricsRegistry& reg = GlobalMetrics();
      {
        std::lock_guard<std::mutex> lock(g_terminal_mtx);
        FoldProgXeStats(g_terminal_stats, &reg);
      }
      ShardCoverage coverage_total;
      coverage_total.shards = 0;
      for (const auto& [id, query] : queries) {
        if (!IsTerminal(query->handle.state())) continue;
        const ShardCoverage& c = query->handle.coverage();
        coverage_total.shards += c.shards;
        coverage_total.completed += c.completed;
        coverage_total.abandoned += c.abandoned;
        coverage_total.retries += c.retries;
        coverage_total.replay_pairs_saved += c.replay_pairs_saved;
      }
      FoldSchedulerStats(scheduler.stats(), &reg);
      FoldShardCoverage(coverage_total, &reg);
      FoldNetStats(&reg);
      FoldObservability(&reg);
      std::string text;
      reg.RenderPrometheus(&text);
      EmitRaw(text + "ok metrics\n");
      continue;
    }

    if (cmd == "cancel" || cmd == "stats") {
      if (tokens.size() != 2) {
        Emit("err usage: " + cmd + " <id>");
        continue;
      }
      uint64_t id = 0;
      if (!ParseU64(tokens[1], &id)) {
        Emit("err bad id: " + tokens[1]);
        continue;
      }
      auto it = queries.find(id);
      if (it == queries.end()) {
        Emit("err no such query: " + tokens[1]);
        continue;
      }
      if (cmd == "cancel") {
        it->second->handle.Cancel();
        Emit("ok cancelling id=" + tokens[1]);
      } else {
        PrintStat(*it->second);
      }
      continue;
    }

    if (cmd == "list") {
      for (const auto& [id, query] : queries) PrintStat(*query);
      Emit("ok " + std::to_string(queries.size()) + " queries");
      continue;
    }

    if (cmd == "drain") {
      scheduler.Drain();
      Emit("ok drained");
      continue;
    }

    Emit("err unknown command: " + cmd +
         " (try submit/cancel/stats/metrics/list/drain/quit)");
  }

  // Scheduler destruction cancels whatever is still in flight; sinks (and
  // the workloads they join over) stay alive until after that.
  return 0;
}
