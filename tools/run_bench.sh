#!/usr/bin/env bash
# Runs the perf-trajectory benches and writes BENCH_progxe.json at the repo
# root: Fig-10/13-style per-config total time, time-to-first-result and
# dominance-comparison counts, the thread-scaling sweep of the parallel
# join->map pipeline (bench_scaling_threads), the multi-query serving-layer
# sweep (bench_multiquery), the shard-count sweep of the sharded executor
# (bench_sharded), plus the insert-path and CombineBatch microbenchmark
# throughput when google-benchmark is available.
#
# Usage: tools/run_bench.sh [build_dir] [extra bench_json_summary flags...]
#   tools/run_bench.sh                 # uses ./build, CI-scale sizes
#   tools/run_bench.sh build --quick   # smoke-sized run
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

if [[ ! -x "$build_dir/bench_json_summary" ]]; then
  echo "building benches in $build_dir ..."
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" -j --target bench_json_summary >/dev/null
  cmake --build "$build_dir" -j --target bench_scaling_threads >/dev/null
  cmake --build "$build_dir" -j --target bench_multiquery >/dev/null
  cmake --build "$build_dir" -j --target bench_sharded >/dev/null
  cmake --build "$build_dir" -j --target bench_distributed >/dev/null
  cmake --build "$build_dir" -j --target bench_micro_components >/dev/null 2>&1 || true
fi

out="$repo_root/BENCH_progxe.json"
"$build_dir/bench_json_summary" --out="$out.tmp" "$@"

threads_json=""
if [[ -x "$build_dir/bench_scaling_threads" ]]; then
  echo "running thread-scaling bench ..."
  "$build_dir/bench_scaling_threads" --json="$out.threads.tmp" "$@"
  threads_json="$(cat "$out.threads.tmp")"
  rm -f "$out.threads.tmp"
fi

multiquery_json=""
if [[ -x "$build_dir/bench_multiquery" ]]; then
  echo "running multi-query serving bench ..."
  "$build_dir/bench_multiquery" --json="$out.multiquery.tmp" "$@"
  multiquery_json="$(cat "$out.multiquery.tmp")"
  rm -f "$out.multiquery.tmp"
fi

sharded_json=""
if [[ -x "$build_dir/bench_sharded" ]]; then
  echo "running sharded-execution bench ..."
  "$build_dir/bench_sharded" --json="$out.sharded.tmp" "$@"
  sharded_json="$(cat "$out.sharded.tmp")"
  rm -f "$out.sharded.tmp"
fi

distributed_json=""
if [[ -x "$build_dir/bench_distributed" ]]; then
  echo "running distributed-execution bench ..."
  "$build_dir/bench_distributed" --json="$out.distributed.tmp" "$@"
  distributed_json="$(cat "$out.distributed.tmp")"
  rm -f "$out.distributed.tmp"
fi

micro_json=""
if [[ -x "$build_dir/bench_micro_components" ]]; then
  echo "running insert-path microbenchmark ..."
  micro_json="$("$build_dir/bench_micro_components" \
      --benchmark_filter='OutputTableInsert|CombineBatch' \
      --benchmark_format=json 2>/dev/null)"
fi

# Merge the thread-scaling, multi-query, sharded and micro results (if any)
# into the summary JSON, and carry forward the run history: each invocation
# appends one timestamped headline entry to a bounded "history" array
# instead of wiping the previous runs' trajectory.
MICRO_JSON="$micro_json" THREADS_JSON="$threads_json" \
MULTIQUERY_JSON="$multiquery_json" SHARDED_JSON="$sharded_json" \
DISTRIBUTED_JSON="$distributed_json" \
python3 - "$out.tmp" "$out" <<'EOF'
import datetime, json, os, sys
summary = json.load(open(sys.argv[1]))
threads_raw = os.environ.get("THREADS_JSON", "")
if threads_raw.strip():
    summary["thread_scaling"] = json.loads(threads_raw)
multiquery_raw = os.environ.get("MULTIQUERY_JSON", "")
if multiquery_raw.strip():
    summary["multiquery"] = json.loads(multiquery_raw)
    # Cross-query reuse headline (refinement burst): lifted to the top
    # level so the CI gate and trend tooling find it without digging.
    if isinstance(summary["multiquery"], dict) and "reuse" in summary["multiquery"]:
        summary["reuse"] = summary["multiquery"]["reuse"]
sharded_raw = os.environ.get("SHARDED_JSON", "")
if sharded_raw.strip():
    summary["sharded"] = json.loads(sharded_raw)
distributed_raw = os.environ.get("DISTRIBUTED_JSON", "")
if distributed_raw.strip():
    summary["distributed"] = json.loads(distributed_raw)
micro_raw = os.environ.get("MICRO_JSON", "")
if micro_raw.strip():
    micro = json.loads(micro_raw)
    summary["micro_insert"] = [
        {
            "name": b["name"],
            "items_per_second": b.get("items_per_second"),
            "cpu_time_ns": b.get("cpu_time"),
        }
        for b in micro.get("benchmarks", [])
    ]

# One compact headline per run: enough to plot a trend, small enough that
# dozens of entries stay readable. The full per-run detail lives in the
# top-level keys, which describe only the latest run.
entry = {"timestamp":
         datetime.datetime.now(datetime.timezone.utc)
         .strftime("%Y-%m-%dT%H:%M:%SZ")}
sharded = summary.get("sharded")
if isinstance(sharded, dict):
    for key in ("fault_hook_ns_per_call", "trace_hook_ns_per_call"):
        if key in sharded:
            entry[key] = sharded[key]
    for run in sharded.get("runs", []):
        if run.get("shards") == 4:
            for key in ("merge_comparisons", "makespan_s", "t_first_s"):
                if key in run:
                    entry[f"k4_{key}"] = run[key]
reuse = summary.get("reuse")
if isinstance(reuse, dict):
    for key in ("prepare_skipped", "results_match"):
        if key in reuse:
            entry[f"reuse_{key}"] = reuse[key]
distributed = summary.get("distributed")
if isinstance(distributed, dict):
    for key in ("distributed_makespan_s", "bytes_sent", "results_match"):
        if key in distributed:
            entry[f"distributed_{key}" if not key.startswith("distributed")
                  else key] = distributed[key]
    recovery = distributed.get("recovery")
    if isinstance(recovery, dict):
        for key in ("replay_pairs_saved", "results_match"):
            if key in recovery:
                entry[f"recovery_{key}"] = recovery[key]

history = []
if os.path.exists(sys.argv[2]):
    try:
        prev = json.load(open(sys.argv[2]))
        history = prev.get("history", [])
        if not isinstance(history, list):
            history = []
    except (ValueError, OSError):
        history = []
history.append(entry)
summary["history"] = history[-100:]  # bound unbounded growth

json.dump(summary, open(sys.argv[2], "w"), indent=2)
print(f"wrote {sys.argv[2]} (history: {len(summary['history'])} entries)")
EOF
rm -f "$out.tmp"
